// Package iobench implements the suite's I/O category: the disk I/O
// benchmark (climate-model history tapes and restart files written at
// multiple resolutions), the HIPPI benchmark (raw packet transfers,
// single and concurrent, across packet sizes — the interoperability
// test for the NCAR Mass Storage System), and the NETWORK benchmark (a
// command-level model of the FDDI/IP capability script).
package iobench

import (
	"fmt"

	"sx4bench/internal/ccm2"
	"sx4bench/internal/sx4/iop"
)

// --- I/O benchmark ---

// HistoryWrite models writing one simulated header file plus a
// direct-access "history tape" with one record per latitude (so that a
// multiprocessor system could write different latitude records from
// different processors).
type HistoryWrite struct {
	Resolution  ccm2.Resolution
	HeaderBytes int64
	RecordBytes int64
	Records     int
	Seconds     float64
	MBps        float64
}

// RunHistoryWrite models the write for one resolution.
func RunHistoryWrite(d iop.Disk, res ccm2.Resolution) HistoryWrite {
	h := HistoryWrite{
		Resolution:  res,
		HeaderBytes: 64 << 10,
		Records:     res.NLat,
	}
	// One record: all fields on one latitude circle.
	h.RecordBytes = ccm2.HistoryBytesPerDay(res) / int64(res.NLat)
	h.Seconds = d.WriteTime(h.HeaderBytes) + d.WriteRecords(h.Records, h.RecordBytes)
	total := h.HeaderBytes + int64(h.Records)*h.RecordBytes
	h.MBps = float64(total) / h.Seconds / 1e6
	return h
}

// IOSweep runs the history-tape write at every Table 4 resolution.
func IOSweep(d iop.Disk) []HistoryWrite {
	out := make([]HistoryWrite, 0, len(ccm2.Resolutions))
	for _, r := range ccm2.Resolutions {
		out = append(out, RunHistoryWrite(d, r))
	}
	return out
}

// ConcurrentIOResult models the multiprocessor history write the
// benchmark description calls for: "if run on a multiprocessing
// system, different processors could write different records". The
// IOPs operate asynchronously as independent I/O engines, so the CPUs
// hand records to IOP buffers and return to computing; the IOPs drain
// an elevator-ordered stream to the disk array.
type ConcurrentIOResult struct {
	Writers int
	// CPUSeconds is the time each processor is blocked handing its
	// records to the IOPs.
	CPUSeconds float64
	// DiskSeconds is the wall time until the data is on disk.
	DiskSeconds float64
}

// ConcurrentHistoryWrite models `writers` processors writing the
// latitude records of one day's history tape.
func ConcurrentHistoryWrite(sub iop.Subsystem, res ccm2.Resolution, writers int) ConcurrentIOResult {
	if writers < 1 {
		writers = 1
	}
	if writers > res.NLat {
		writers = res.NLat
	}
	recBytes := ccm2.HistoryBytesPerDay(res) / int64(res.NLat)
	perWriterRecords := (res.NLat + writers - 1) / writers
	perWriterBytes := int64(perWriterRecords) * recBytes

	// CPU-visible cost: staging into IOP buffers; concurrent writers
	// share the aggregate IOP bandwidth.
	iopRate := sub.AggregateBandwidth() / float64(writers)
	if solo := sub.IOPBytesPerSec; iopRate > solo {
		iopRate = solo // one stream cannot exceed a single IOP channel
	}
	cpu := float64(perWriterBytes) / iopRate

	// Disk-visible cost: the IOPs reorder the interleaved records into
	// a near-sequential stream, so the elevator keeps the seek count of
	// the sequential case.
	disk := sub.DiskArray.WriteRecords(res.NLat, recBytes)
	return ConcurrentIOResult{Writers: writers, CPUSeconds: cpu, DiskSeconds: disk}
}

// --- HIPPI benchmark ---

// HIPPIPoint is one measurement of the HIPPI benchmark.
type HIPPIPoint struct {
	PacketBytes     int
	Concurrent      int
	PerTransferMBps float64
	AggregateMBps   float64
}

// HIPPISweep measures raw-packet transfer rates across packet sizes
// for single and multiple concurrent transfers.
func HIPPISweep(s iop.Subsystem, transferBytes int64) []HIPPIPoint {
	var out []HIPPIPoint
	for _, pkt := range []int{1 << 10, 4 << 10, 16 << 10, 64 << 10} {
		for _, n := range []int{1, 2, 4} {
			per, agg := s.ConcurrentHIPPI(n, transferBytes, pkt)
			out = append(out, HIPPIPoint{
				PacketBytes:     pkt,
				Concurrent:      n,
				PerTransferMBps: per / 1e6,
				AggregateMBps:   agg / 1e6,
			})
		}
	}
	return out
}

// HIPPITestSeconds models the PRODLOAD HIPPI component: move the given
// volume through one channel with large packets.
func HIPPITestSeconds(s iop.Subsystem, bytes int64) float64 {
	return s.Channel.TransferTime(bytes, s.Channel.MaxPacketBytes)
}

// --- NETWORK benchmark ---

// NetCommand is one entry of the NETWORK script.
type NetCommand struct {
	Name      string
	DataBytes int64 // zero for non-data-transfer commands
	FixedSec  float64
}

// FDDI link model for the data-transfer commands.
type FDDI struct {
	BytesPerSec float64
	SetupSec    float64
}

// NewFDDI returns the era FDDI ring: 100 Mbit/s, ~70% achievable.
func NewFDDI() FDDI { return FDDI{BytesPerSec: 8.75e6, SetupSec: 0.05} }

// StandardScript returns the benchmark's command list: data-transfer
// commands executed against a comparable target machine, and
// non-data-transfer commands executed locally.
func StandardScript() []NetCommand {
	return []NetCommand{
		{Name: "ping", FixedSec: 0.002},
		{Name: "nslookup", FixedSec: 0.02},
		{Name: "telnet-session", FixedSec: 0.5},
		{Name: "ftp-put-1MB", DataBytes: 1 << 20},
		{Name: "ftp-put-64MB", DataBytes: 64 << 20},
		{Name: "ftp-get-64MB", DataBytes: 64 << 20},
		{Name: "rcp-256MB", DataBytes: 256 << 20},
		{Name: "nfs-read-16MB", DataBytes: 16 << 20},
	}
}

// NetResult is one executed command.
type NetResult struct {
	Name    string
	Seconds float64
	MBps    float64 // zero for non-data commands
}

// RunNetwork executes the script against the link model.
func RunNetwork(link FDDI, script []NetCommand) []NetResult {
	out := make([]NetResult, 0, len(script))
	for _, c := range script {
		r := NetResult{Name: c.Name}
		if c.DataBytes > 0 {
			r.Seconds = link.SetupSec + float64(c.DataBytes)/link.BytesPerSec
			r.MBps = float64(c.DataBytes) / r.Seconds / 1e6
		} else {
			r.Seconds = c.FixedSec
		}
		out = append(out, r)
	}
	return out
}

func (h HistoryWrite) String() string {
	return fmt.Sprintf("%s: %d records x %d B + header in %.2f s (%.1f MB/s)",
		h.Resolution.Name, h.Records, h.RecordBytes, h.Seconds, h.MBps)
}
