// Package nas provides compact stand-ins for two NAS Parallel
// Benchmark kernels — EP (embarrassingly parallel Gaussian-pair
// generation) and a multigrid-flavored smoothing kernel — for the
// paper's Section 3.2 contrast: the NAS suite characterizes large-scale
// CFD, which overlaps with but does not represent NCAR's climate load.
// The NAS benchmarks are specified algorithmically rather than as code;
// these follow the specification shapes at reduced default sizes.
package nas

import (
	"math"

	"sx4bench/internal/sx4/prog"
	"sx4bench/internal/target"
)

// lcg is the NAS linear congruential generator a=5^13, m=2^46.
type lcg struct{ seed uint64 }

const (
	lcgA = 1220703125      // 5^13
	lcgM = uint64(1) << 46 // modulus
)

func (l *lcg) next() float64 {
	l.seed = (l.seed * lcgA) & (lcgM - 1)
	return float64(l.seed) / float64(lcgM)
}

// EPResult reports the EP kernel outcome: counts of Gaussian pairs by
// annulus, plus the sums the specification checks.
type EPResult struct {
	Pairs  int
	Counts [10]int64
	SumX   float64
	SumY   float64
}

// EP generates n uniform pairs, accepts those inside the unit circle,
// converts them to Gaussian deviates by the Box-Muller/Marsaglia polar
// method, and bins them by max(|x|,|y|) — the NAS EP kernel.
func EP(n int, seed uint64) EPResult {
	g := lcg{seed: seed}
	var res EPResult
	for i := 0; i < n; i++ {
		x := 2*g.next() - 1
		y := 2*g.next() - 1
		t := x*x + y*y
		if t > 1 || t == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(t) / t)
		gx, gy := x*f, y*f
		res.Pairs++
		res.SumX += gx
		res.SumY += gy
		bin := int(math.Max(math.Abs(gx), math.Abs(gy)))
		if bin > 9 {
			bin = 9
		}
		res.Counts[bin]++
	}
	return res
}

// EPTrace is the machine trace of EP: vectorizable pair generation and
// an intrinsic-heavy transform, with essentially no memory traffic.
func EPTrace(n int) prog.Program {
	return prog.Simple("NAS-EP", int64(n)/1024,
		prog.Op{Class: prog.VMul, VL: 1024, FlopsPerElem: 6},
		prog.Op{Class: prog.VAdd, VL: 1024, FlopsPerElem: 3},
		prog.Op{Class: prog.VIntrinsic, VL: 1024, Intr: prog.Log},
		prog.Op{Class: prog.VIntrinsic, VL: 1024, Intr: prog.Sqrt},
		prog.Op{Class: prog.VLogical, VL: 1024},
	)
}

// EPMFLOPS models the EP kernel's rate on a machine.
func EPMFLOPS(m target.Target, n int) float64 {
	r := m.Run(EPTrace(n), target.RunOpts{Procs: 1})
	return r.MFLOPS()
}

// MGSmooth applies one 3-point damped-Jacobi smoothing sweep per
// dimension of a cubic grid — the MG kernel's inner operation.
func MGSmooth(u, f []float64, n int, omega float64) []float64 {
	out := make([]float64, len(u))
	copy(out, u)
	idx := func(i, j, k int) int { return (i*n+j)*n + k }
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			for k := 1; k < n-1; k++ {
				lap := u[idx(i-1, j, k)] + u[idx(i+1, j, k)] +
					u[idx(i, j-1, k)] + u[idx(i, j+1, k)] +
					u[idx(i, j, k-1)] + u[idx(i, j, k+1)] - 6*u[idx(i, j, k)]
				out[idx(i, j, k)] = u[idx(i, j, k)] + omega*(lap-f[idx(i, j, k)])
			}
		}
	}
	return out
}

// MGTrace is the machine trace of one smoothing sweep on an n³ grid.
func MGTrace(n int) prog.Program {
	return prog.Simple("NAS-MG-smooth", int64(n)*int64(n),
		prog.Op{Class: prog.VLoad, VL: 7 * n, Stride: 1},
		prog.Op{Class: prog.VAdd, VL: n, FlopsPerElem: 7},
		prog.Op{Class: prog.VMul, VL: n, FlopsPerElem: 2},
		prog.Op{Class: prog.VStore, VL: n, Stride: 1},
	)
}

// EPMFLOPS and MGMFLOPS model the kernels' rates on a machine.
func MGMFLOPS(m target.Target, n int) float64 {
	r := m.Run(MGTrace(n), target.RunOpts{Procs: 1})
	return r.MFLOPS()
}
