package nas

import (
	"math"
	"testing"

	"sx4bench/internal/sx4"
)

func TestEPStatistics(t *testing.T) {
	res := EP(200000, 271828183)
	// Acceptance rate of the polar method is pi/4.
	rate := float64(res.Pairs) / 200000
	if math.Abs(rate-math.Pi/4) > 0.01 {
		t.Errorf("acceptance rate = %v, want ~%v", rate, math.Pi/4)
	}
	// Gaussian deviates: means near zero, most mass in the first two
	// annuli.
	meanX := res.SumX / float64(res.Pairs)
	meanY := res.SumY / float64(res.Pairs)
	if math.Abs(meanX) > 0.02 || math.Abs(meanY) > 0.02 {
		t.Errorf("means = %v, %v; want ~0", meanX, meanY)
	}
	if res.Counts[0] < res.Counts[1] || res.Counts[1] < res.Counts[2] {
		t.Errorf("annulus counts not decreasing: %v", res.Counts)
	}
	var total int64
	for _, c := range res.Counts {
		total += c
	}
	if total != int64(res.Pairs) {
		t.Errorf("counts sum %d != pairs %d", total, res.Pairs)
	}
}

func TestEPDeterministic(t *testing.T) {
	a := EP(10000, 42)
	b := EP(10000, 42)
	if a != b {
		t.Error("EP not deterministic for equal seeds")
	}
	c := EP(10000, 43)
	if a == c {
		t.Error("different seeds gave identical results")
	}
}

func TestLCGRange(t *testing.T) {
	g := lcg{seed: 314159265}
	for i := 0; i < 10000; i++ {
		v := g.next()
		if v < 0 || v >= 1 {
			t.Fatalf("lcg out of range: %v", v)
		}
	}
}

func TestMGSmoothReducesResidual(t *testing.T) {
	n := 16
	u := make([]float64, n*n*n)
	f := make([]float64, n*n*n)
	// Random interior error against f=0: smoothing damps it.
	for i := range u {
		u[i] = math.Sin(float64(i))
	}
	energy := func(v []float64) float64 {
		var s float64
		idx := func(i, j, k int) int { return (i*n+j)*n + k }
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				for k := 1; k < n-1; k++ {
					lap := v[idx(i-1, j, k)] + v[idx(i+1, j, k)] +
						v[idx(i, j-1, k)] + v[idx(i, j+1, k)] +
						v[idx(i, j, k-1)] + v[idx(i, j, k+1)] - 6*v[idx(i, j, k)]
					s += lap * lap
				}
			}
		}
		return s
	}
	before := energy(u)
	out := u
	for sweep := 0; sweep < 5; sweep++ {
		out = MGSmooth(out, f, n, 0.1)
	}
	after := energy(out)
	if after >= before {
		t.Errorf("smoothing did not reduce residual energy: %v -> %v", before, after)
	}
}

func TestTraceRates(t *testing.T) {
	m := sx4.New(sx4.BenchmarkedSingleCPU())
	ep := EPMFLOPS(m, 1<<20)
	mg := MGMFLOPS(m, 64)
	if ep <= 0 || mg <= 0 {
		t.Fatalf("non-positive rates ep=%v mg=%v", ep, mg)
	}
	// MG streams memory; EP is intrinsic bound. Both well under peak.
	peak := m.Config().PeakFlopsPerCPU() / 1e6
	if ep > peak || mg > peak {
		t.Errorf("kernel exceeds peak: ep=%v mg=%v peak=%v", ep, mg, peak)
	}
}
