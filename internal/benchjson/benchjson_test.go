package benchjson

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: sx4bench
cpu: Xeon
BenchmarkRADABS-8   	     100	  11983456 ns/op	      876 mflops
BenchmarkRunAllSerial-8	       5	 200000000 ns/op	 1024 B/op	       3 allocs/op
BenchmarkRunAllParallel-8	      10	 100000000 ns/op
some test chatter
PASS
`

func TestParseSample(t *testing.T) {
	b, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if b.GOOS != "linux" || b.GOARCH != "amd64" || b.CPU != "Xeon" {
		t.Errorf("header context = %q/%q/%q", b.GOOS, b.GOARCH, b.CPU)
	}
	if len(b.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(b.Benchmarks))
	}
	rad := b.Benchmarks[0]
	if rad.Name != "BenchmarkRADABS-8" || rad.Iterations != 100 || rad.NsPerOp != 11983456 {
		t.Errorf("RADABS line parsed as %+v", rad)
	}
	if rad.Metrics["mflops"] != 876 {
		t.Errorf("custom metric = %v, want 876", rad.Metrics)
	}
	serial := b.Benchmarks[1]
	if serial.BytesPerOp == nil || *serial.BytesPerOp != 1024 ||
		serial.AllocsPerOp == nil || *serial.AllocsPerOp != 3 {
		t.Errorf("alloc counters parsed as %+v", serial)
	}
	if math.Abs(b.RunAllSpeedup-2.0) > 1e-12 {
		t.Errorf("RunAllSpeedup = %v, want 2.0", b.RunAllSpeedup)
	}
}

func TestParseCapacitySpeedup(t *testing.T) {
	in := `BenchmarkCapacityMonteCarlo/workers=1-8   	       1	 9000000000 ns/op	 1111 scenarios/s
BenchmarkCapacityMonteCarlo/workers=4-8   	       1	 4500000000 ns/op	 2222 scenarios/s
BenchmarkCapacityMonteCarlo/workers=8-8   	       1	 3000000000 ns/op	 3333 scenarios/s
`
	b, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.CapacitySpeedup-3.0) > 1e-12 {
		t.Errorf("CapacitySpeedup = %v, want 3.0 (workers=1 over workers=8)", b.CapacitySpeedup)
	}
	// Either end missing means no summary, not a half-derived one.
	half, err := Parse(strings.NewReader("BenchmarkCapacityMonteCarlo/workers=1-8 1 9000000000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if half.CapacitySpeedup != 0 {
		t.Errorf("CapacitySpeedup = %v from a single variant, want 0", half.CapacitySpeedup)
	}
}

func TestParseEmptyErrors(t *testing.T) {
	for _, in := range []string{"", "PASS\nok\n", "goos: linux\n"} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) accepted input with no benchmark lines", in)
		}
	}
}

func TestParseLineRejectsMalformed(t *testing.T) {
	bad := []string{
		"BenchmarkX",                    // too few fields
		"BenchmarkX ten 5 ns/op",        // non-numeric iterations
		"BenchmarkX 10 five ns/op",      // non-numeric value
		"BenchmarkX 10 5 widgets extra", // no ns/op or metric pair parsed -> metrics
		"BenchmarkX 10 0 ns/op",         // zero ns/op and no metrics
	}
	for _, line := range bad[:3] {
		if _, ok := ParseLine(line); ok {
			t.Errorf("ParseLine(%q) accepted malformed line", line)
		}
	}
	if _, ok := ParseLine(bad[4]); ok {
		t.Errorf("ParseLine(%q) accepted zero-information line", bad[4])
	}
}

func TestParseLineRejectsNonFinite(t *testing.T) {
	// ParseFloat accepts NaN/Inf spellings; the parser must not, or the
	// JSON baseline becomes unserializable (found by FuzzReportParse).
	for _, line := range []string{
		"Benchmark 0 NAN 0",
		"BenchmarkX-8 10 Inf ns/op",
		"BenchmarkX-8 10 5 ns/op -Inf widgets",
	} {
		if _, ok := ParseLine(line); ok {
			t.Errorf("ParseLine(%q) accepted a non-finite value", line)
		}
	}
}

func TestParseLineRejectsInfMetrics(t *testing.T) {
	// Every spelling ParseFloat accepts for the infinities must be
	// rejected in the metric position too, not just in ns/op.
	for _, line := range []string{
		"BenchmarkX-8 10 5 ns/op +Inf mflops",
		"BenchmarkX-8 10 5 ns/op inf mflops",
		"BenchmarkX-8 10 5 ns/op Infinity mflops",
		"BenchmarkX-8 10 5 ns/op -infinity mflops",
		"BenchmarkX-8 10 5 ns/op nan mflops",
	} {
		if _, ok := ParseLine(line); ok {
			t.Errorf("ParseLine(%q) accepted a non-finite metric", line)
		}
	}
}

type failingReader struct{ err error }

func (r failingReader) Read([]byte) (int, error) { return 0, r.err }

func TestParseReaderError(t *testing.T) {
	// A reader that fails mid-stream (interrupted pipe) must surface
	// the error rather than return a silently short baseline.
	wantErr := errors.New("pipe broke")
	if _, err := Parse(failingReader{wantErr}); !errors.Is(err, wantErr) {
		t.Errorf("Parse with failing reader: err = %v, want %v", err, wantErr)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	orig, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(strings.NewReader(string(data)))
	if err != nil {
		t.Fatalf("Load of marshalled baseline: %v", err)
	}
	if len(got.Benchmarks) != len(orig.Benchmarks) || got.RunAllSpeedup != orig.RunAllSpeedup {
		t.Errorf("round trip changed the baseline: %+v vs %+v", got, orig)
	}
}

func TestLoadRejectsBadJSON(t *testing.T) {
	valid := `{"benchmarks":[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":5}]}`
	cases := map[string]string{
		"empty":            "",
		"truncated":        valid[:len(valid)/2],
		"not JSON":         "BenchmarkX-8 10 5 ns/op",
		"no records":       `{"benchmarks":[]}`,
		"null records":     `{"goos":"linux"}`,
		"unnamed record":   `{"benchmarks":[{"iterations":10,"ns_per_op":5}]}`,
		"metric overflow":  `{"benchmarks":[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":5,"metrics":{"mflops":1e999}}]}`,
		"neg iterations":   `{"benchmarks":[{"name":"BenchmarkX-8","iterations":-1,"ns_per_op":5}]}`,
		"ns/op overflow":   `{"benchmarks":[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":1e999}]}`,
		"speedup overflow": `{"benchmarks":[{"name":"BenchmarkX-8","iterations":10,"ns_per_op":5}],"runall_parallel_speedup":1e999}`,
	}
	for desc, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("Load accepted %s baseline %q", desc, in)
		}
	}
	if _, err := Load(failingReader{io.ErrUnexpectedEOF}); err == nil {
		t.Error("Load accepted a failing reader")
	}
}

func TestValidateRejectsNonFinite(t *testing.T) {
	// JSON cannot spell NaN/Inf, but in-memory baselines can hold
	// them; Validate is the gate before Marshal.
	base := func() Baseline {
		return Baseline{Benchmarks: []Result{{Name: "BenchmarkX-8", Iterations: 10, NsPerOp: 5}}}
	}
	good := base()
	if err := Validate(good); err != nil {
		t.Fatalf("Validate rejected a good baseline: %v", err)
	}
	cases := map[string]Baseline{}
	b := base()
	b.Benchmarks[0].NsPerOp = math.Inf(1)
	cases["Inf ns/op"] = b
	b = base()
	b.Benchmarks[0].Metrics = map[string]float64{"mflops": math.NaN()}
	cases["NaN metric"] = b
	b = base()
	b.Benchmarks[0].Metrics = map[string]float64{"mflops": math.Inf(-1)}
	cases["-Inf metric"] = b
	b = base()
	b.RunAllSpeedup = math.NaN()
	cases["NaN speedup"] = b
	for desc, bl := range cases {
		if err := Validate(bl); err == nil {
			t.Errorf("Validate accepted a baseline with %s", desc)
		}
	}
}

func TestParseLineVeryLongLine(t *testing.T) {
	// The scanner buffer must survive long single lines (wide CPU
	// strings, huge metric lists) without erroring out.
	line := "BenchmarkLong-8 10 5 ns/op" + strings.Repeat(" 1 m/op", 5000)
	b, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatalf("long line: %v", err)
	}
	if len(b.Benchmarks) != 1 {
		t.Fatalf("long line parsed %d benchmarks", len(b.Benchmarks))
	}
}
