package benchjson

import (
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: sx4bench
cpu: Xeon
BenchmarkRADABS-8   	     100	  11983456 ns/op	      876 mflops
BenchmarkRunAllSerial-8	       5	 200000000 ns/op	 1024 B/op	       3 allocs/op
BenchmarkRunAllParallel-8	      10	 100000000 ns/op
some test chatter
PASS
`

func TestParseSample(t *testing.T) {
	b, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if b.GOOS != "linux" || b.GOARCH != "amd64" || b.CPU != "Xeon" {
		t.Errorf("header context = %q/%q/%q", b.GOOS, b.GOARCH, b.CPU)
	}
	if len(b.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(b.Benchmarks))
	}
	rad := b.Benchmarks[0]
	if rad.Name != "BenchmarkRADABS-8" || rad.Iterations != 100 || rad.NsPerOp != 11983456 {
		t.Errorf("RADABS line parsed as %+v", rad)
	}
	if rad.Metrics["mflops"] != 876 {
		t.Errorf("custom metric = %v, want 876", rad.Metrics)
	}
	serial := b.Benchmarks[1]
	if serial.BytesPerOp == nil || *serial.BytesPerOp != 1024 ||
		serial.AllocsPerOp == nil || *serial.AllocsPerOp != 3 {
		t.Errorf("alloc counters parsed as %+v", serial)
	}
	if math.Abs(b.RunAllSpeedup-2.0) > 1e-12 {
		t.Errorf("RunAllSpeedup = %v, want 2.0", b.RunAllSpeedup)
	}
}

func TestParseEmptyErrors(t *testing.T) {
	for _, in := range []string{"", "PASS\nok\n", "goos: linux\n"} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) accepted input with no benchmark lines", in)
		}
	}
}

func TestParseLineRejectsMalformed(t *testing.T) {
	bad := []string{
		"BenchmarkX",                     // too few fields
		"BenchmarkX ten 5 ns/op",         // non-numeric iterations
		"BenchmarkX 10 five ns/op",       // non-numeric value
		"BenchmarkX 10 5 widgets extra",  // no ns/op or metric pair parsed -> metrics
		"BenchmarkX 10 0 ns/op",          // zero ns/op and no metrics
	}
	for _, line := range bad[:3] {
		if _, ok := ParseLine(line); ok {
			t.Errorf("ParseLine(%q) accepted malformed line", line)
		}
	}
	if _, ok := ParseLine(bad[4]); ok {
		t.Errorf("ParseLine(%q) accepted zero-information line", bad[4])
	}
}

func TestParseLineRejectsNonFinite(t *testing.T) {
	// ParseFloat accepts NaN/Inf spellings; the parser must not, or the
	// JSON baseline becomes unserializable (found by FuzzReportParse).
	for _, line := range []string{
		"Benchmark 0 NAN 0",
		"BenchmarkX-8 10 Inf ns/op",
		"BenchmarkX-8 10 5 ns/op -Inf widgets",
	} {
		if _, ok := ParseLine(line); ok {
			t.Errorf("ParseLine(%q) accepted a non-finite value", line)
		}
	}
}

func TestParseLineVeryLongLine(t *testing.T) {
	// The scanner buffer must survive long single lines (wide CPU
	// strings, huge metric lists) without erroring out.
	line := "BenchmarkLong-8 10 5 ns/op" + strings.Repeat(" 1 m/op", 5000)
	b, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatalf("long line: %v", err)
	}
	if len(b.Benchmarks) != 1 {
		t.Fatalf("long line parsed %d benchmarks", len(b.Benchmarks))
	}
}
