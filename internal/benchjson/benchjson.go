// Package benchjson parses `go test -bench` text output into the
// BENCH_BASELINE.json baseline layout. It is the library behind
// cmd/benchjson, split out so the parser is testable and fuzzable (the
// FuzzReportParse target in internal/check drives it with arbitrary
// input): benchmark reports arrive from shell pipelines and must never
// panic the converter, however mangled.
package benchjson

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the file layout.
type Baseline struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
	// RunAllSpeedup is serial ns/op divided by parallel ns/op for the
	// BenchmarkRunAllSerial / BenchmarkRunAllParallel pair.
	RunAllSpeedup float64 `json:"runall_parallel_speedup,omitempty"`
}

// Parse reads `go test -bench` text output and collects every
// benchmark line, the goos/goarch/cpu header context, and the RunAll
// serial/parallel speedup summary. Unparseable lines are skipped, as
// `go test` interleaves benchmark lines with test chatter; an input
// with no benchmark lines at all is an error.
func Parse(r io.Reader) (Baseline, error) {
	var b Baseline
	var serial, parallel float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			b.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			b.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			b.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		r, ok := ParseLine(line)
		if !ok {
			continue
		}
		b.Benchmarks = append(b.Benchmarks, r)
		switch strings.SplitN(r.Name, "-", 2)[0] {
		case "BenchmarkRunAllSerial":
			serial = r.NsPerOp
		case "BenchmarkRunAllParallel":
			parallel = r.NsPerOp
		}
	}
	if err := sc.Err(); err != nil {
		return b, err
	}
	if len(b.Benchmarks) == 0 {
		return b, fmt.Errorf("no benchmark lines on stdin")
	}
	if serial > 0 && parallel > 0 {
		b.RunAllSpeedup = serial / parallel
	}
	return b, nil
}

// ParseLine reads one "BenchmarkX-8  123  456 ns/op  7 B/op ..." line.
func ParseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters}
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			// ParseFloat accepts "NaN" and "Inf", which a benchmark
			// line never legitimately contains and which would poison
			// the JSON baseline (json.Marshal rejects non-finite).
			return Result{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			n := int64(v)
			r.BytesPerOp = &n
		case "allocs/op":
			n := int64(v)
			r.AllocsPerOp = &n
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	if r.NsPerOp == 0 && r.Metrics == nil {
		return Result{}, false
	}
	return r, true
}
