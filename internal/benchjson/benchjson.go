// Package benchjson parses `go test -bench` text output into the
// BENCH_BASELINE.json baseline layout. It is the library behind
// cmd/benchjson, split out so the parser is testable and fuzzable (the
// FuzzReportParse target in internal/check drives it with arbitrary
// input): benchmark reports arrive from shell pipelines and must never
// panic the converter, however mangled.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the file layout.
type Baseline struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
	// RunAllSpeedup is serial ns/op divided by parallel ns/op for the
	// BenchmarkRunAllSerial / BenchmarkRunAllParallel pair.
	RunAllSpeedup float64 `json:"runall_parallel_speedup,omitempty"`
	// ColdSweepSpeedup is the interpreted-engine ablation's ns/op
	// divided by the compiled path's, both at 8 workers, for the
	// BenchmarkColdSweep10k pair: what trace compilation buys on a
	// memo-cold sweep.
	ColdSweepSpeedup float64 `json:"coldsweep_compiled_speedup,omitempty"`
	// CapacitySpeedup is serial ns/op divided by 8-worker ns/op for
	// the BenchmarkCapacityMonteCarlo pair: how the fleet capacity
	// Monte Carlo scales across workers on the recording host.
	CapacitySpeedup float64 `json:"capacity_parallel_speedup,omitempty"`
}

// Parse reads `go test -bench` text output and collects every
// benchmark line, the goos/goarch/cpu header context, and the RunAll
// serial/parallel speedup summary. Unparseable lines are skipped, as
// `go test` interleaves benchmark lines with test chatter; an input
// with no benchmark lines at all is an error.
func Parse(r io.Reader) (Baseline, error) {
	var b Baseline
	var serial, parallel float64
	var sweepCompiled, sweepInterp float64
	var capSerial, capParallel float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			b.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			b.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			b.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		r, ok := ParseLine(line)
		if !ok {
			continue
		}
		b.Benchmarks = append(b.Benchmarks, r)
		switch strings.SplitN(r.Name, "-", 2)[0] {
		case "BenchmarkRunAllSerial":
			serial = r.NsPerOp
		case "BenchmarkRunAllParallel":
			parallel = r.NsPerOp
		case "BenchmarkColdSweep10k/workers=8":
			sweepCompiled = r.NsPerOp
		case "BenchmarkColdSweep10k/uncompiled/workers=8":
			sweepInterp = r.NsPerOp
		case "BenchmarkCapacityMonteCarlo/workers=1":
			capSerial = r.NsPerOp
		case "BenchmarkCapacityMonteCarlo/workers=8":
			capParallel = r.NsPerOp
		}
	}
	if err := sc.Err(); err != nil {
		return b, err
	}
	if len(b.Benchmarks) == 0 {
		return b, fmt.Errorf("no benchmark lines on stdin")
	}
	if serial > 0 && parallel > 0 {
		b.RunAllSpeedup = serial / parallel
	}
	if sweepCompiled > 0 && sweepInterp > 0 {
		b.ColdSweepSpeedup = sweepInterp / sweepCompiled
	}
	if capSerial > 0 && capParallel > 0 {
		b.CapacitySpeedup = capSerial / capParallel
	}
	return b, nil
}

// Load reads a baseline JSON file (as written by cmd/benchjson) back
// into memory, for diffing a fresh run against the committed
// BENCH_BASELINE.json. Truncated or otherwise malformed JSON is an
// error (a half-written baseline from an interrupted bench run must
// not silently read as "everything got faster"), and the result is
// passed through Validate.
func Load(r io.Reader) (Baseline, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Baseline{}, fmt.Errorf("reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, fmt.Errorf("parsing baseline: %w", err)
	}
	if err := Validate(b); err != nil {
		return Baseline{}, err
	}
	return b, nil
}

// Validate checks the structural invariants of a baseline: at least
// one record, every record named, and every number finite. JSON
// itself cannot spell NaN or Inf, but baselines are also built in
// memory (and a hand-edited "1e999" is caught at Unmarshal as out of
// range); validating before Marshal keeps the two paths symmetric.
func Validate(b Baseline) error {
	if len(b.Benchmarks) == 0 {
		return fmt.Errorf("baseline has no benchmark records")
	}
	for _, res := range b.Benchmarks {
		if res.Name == "" {
			return fmt.Errorf("baseline record without a name")
		}
		if !finite(res.NsPerOp) || res.Iterations < 0 {
			return fmt.Errorf("baseline %s: bad ns/op or iterations", res.Name)
		}
		units := make([]string, 0, len(res.Metrics))
		for unit := range res.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			if !finite(res.Metrics[unit]) {
				return fmt.Errorf("baseline %s: non-finite metric %q", res.Name, unit)
			}
		}
	}
	if !finite(b.RunAllSpeedup) {
		return fmt.Errorf("baseline: non-finite runall_parallel_speedup")
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// ParseLine reads one "BenchmarkX-8  123  456 ns/op  7 B/op ..." line.
func ParseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters}
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			// ParseFloat accepts "NaN" and "Inf", which a benchmark
			// line never legitimately contains and which would poison
			// the JSON baseline (json.Marshal rejects non-finite).
			return Result{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			n := int64(v)
			r.BytesPerOp = &n
		case "allocs/op":
			n := int64(v)
			r.AllocsPerOp = &n
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	if r.NsPerOp == 0 && r.Metrics == nil {
		return Result{}, false
	}
	return r, true
}
