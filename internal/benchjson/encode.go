package benchjson

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"unicode"
)

// This file is the wire format's other direction: ParseLine reads
// `go test -bench` text into Result records, EncodeLine and Write
// render records back out as text ParseLine and Parse accept. The
// quickcheck property Parse(Encode(r)) == r (encode_test.go) pins the
// round trip, so the format is tested in both directions — the sx4d
// daemon embeds Result records in its responses and a client must be
// able to re-emit them as benchmark lines without loss.

// reservedUnits are the units ParseLine maps onto dedicated Result
// fields; a metric under one of these names would collide with its
// field on the way back in.
var reservedUnits = map[string]bool{
	"ns/op": true, "B/op": true, "allocs/op": true,
}

// maxExactInt is the largest magnitude a B/op or allocs/op count may
// carry and still round-trip through ParseLine's float64 parse without
// losing integer precision.
const maxExactInt = int64(1) << 53

// EncodeLine renders one Result as a benchmark text line — the exact
// inverse of ParseLine, which must decode it back to a deep-equal
// Result. Results that cannot round-trip are errors rather than silent
// corruption: an empty or whitespace-bearing name, whitespace-bearing
// or reserved metric units, non-finite values, a B/op or allocs/op
// magnitude beyond float64's exact-integer range, a negative iteration
// count, or a record with neither an ns/op value nor metrics (which
// ParseLine rejects as contentless).
func EncodeLine(r Result) (string, error) {
	if r.Name == "" || hasSpace(r.Name) {
		return "", fmt.Errorf("benchjson: unencodable benchmark name %q", r.Name)
	}
	if r.Iterations < 0 {
		return "", fmt.Errorf("benchjson: %s: negative iteration count %d", r.Name, r.Iterations)
	}
	if r.NsPerOp == 0 && len(r.Metrics) == 0 {
		return "", fmt.Errorf("benchjson: %s: no ns/op and no metrics; ParseLine would reject the line", r.Name)
	}
	if r.Metrics != nil && len(r.Metrics) == 0 {
		// ParseLine leaves Metrics nil when no custom units appear; a
		// non-nil empty map would decode to nil and break deep equality.
		return "", fmt.Errorf("benchjson: %s: non-nil empty metrics map cannot round-trip", r.Name)
	}
	if !finite(r.NsPerOp) {
		return "", fmt.Errorf("benchjson: %s: non-finite ns/op", r.Name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d", r.Name, r.Iterations)
	// ns/op is omitted when zero and metrics carry the content, so the
	// decoded NsPerOp field round-trips as the zero it was.
	if r.NsPerOp != 0 {
		b.WriteByte(' ')
		b.WriteString(formatValue(r.NsPerOp))
		b.WriteString(" ns/op")
	}
	if r.BytesPerOp != nil {
		if err := exactInt(r.Name, "B/op", *r.BytesPerOp); err != nil {
			return "", err
		}
		fmt.Fprintf(&b, " %d B/op", *r.BytesPerOp)
	}
	if r.AllocsPerOp != nil {
		if err := exactInt(r.Name, "allocs/op", *r.AllocsPerOp); err != nil {
			return "", err
		}
		fmt.Fprintf(&b, " %d allocs/op", *r.AllocsPerOp)
	}
	units := make([]string, 0, len(r.Metrics))
	for unit := range r.Metrics {
		units = append(units, unit)
	}
	sort.Strings(units)
	for _, unit := range units {
		v := r.Metrics[unit]
		switch {
		case unit == "" || hasSpace(unit):
			return "", fmt.Errorf("benchjson: %s: unencodable metric unit %q", r.Name, unit)
		case reservedUnits[unit]:
			return "", fmt.Errorf("benchjson: %s: metric unit %q collides with a dedicated field", r.Name, unit)
		case !finite(v):
			return "", fmt.Errorf("benchjson: %s: non-finite metric %q", r.Name, unit)
		}
		b.WriteByte(' ')
		b.WriteString(formatValue(v))
		b.WriteByte(' ')
		b.WriteString(unit)
	}
	return b.String(), nil
}

// Write renders a Baseline as `go test -bench` text: the goos/goarch/
// cpu header context, then one line per record. Parse must read the
// output back to an equal Baseline, so every record name must carry
// the "Benchmark" prefix Parse filters on, header values must be
// single-line, and the speedup summary fields must match what Parse
// would rederive from the records themselves (they are derived fields,
// not stored ones).
func Write(w io.Writer, b Baseline) error {
	if len(b.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: baseline has no benchmark records")
	}
	headers := []struct{ key, v string }{
		{"goos", b.GOOS}, {"goarch", b.GOARCH}, {"cpu", b.CPU},
	}
	for _, h := range headers {
		if strings.ContainsAny(h.v, "\n\r") {
			return fmt.Errorf("benchjson: %s header %q is not single-line", h.key, h.v)
		}
	}
	if b.GOOS != "" {
		if _, err := fmt.Fprintf(w, "goos: %s\n", b.GOOS); err != nil {
			return err
		}
	}
	if b.GOARCH != "" {
		if _, err := fmt.Fprintf(w, "goarch: %s\n", b.GOARCH); err != nil {
			return err
		}
	}
	if b.CPU != "" {
		if _, err := fmt.Fprintf(w, "cpu: %s\n", b.CPU); err != nil {
			return err
		}
	}
	var serial, parallel, sweepCompiled, sweepInterp float64
	var capSerial, capParallel float64
	for _, r := range b.Benchmarks {
		if !strings.HasPrefix(r.Name, "Benchmark") {
			return fmt.Errorf("benchjson: record %q lacks the Benchmark prefix Parse filters on", r.Name)
		}
		line, err := EncodeLine(r)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		switch strings.SplitN(r.Name, "-", 2)[0] {
		case "BenchmarkRunAllSerial":
			serial = r.NsPerOp
		case "BenchmarkRunAllParallel":
			parallel = r.NsPerOp
		case "BenchmarkColdSweep10k/workers=8":
			sweepCompiled = r.NsPerOp
		case "BenchmarkColdSweep10k/uncompiled/workers=8":
			sweepInterp = r.NsPerOp
		case "BenchmarkCapacityMonteCarlo/workers=1":
			capSerial = r.NsPerOp
		case "BenchmarkCapacityMonteCarlo/workers=8":
			capParallel = r.NsPerOp
		}
	}
	if derived := deriveSpeedup(serial, parallel); derived != b.RunAllSpeedup {
		return fmt.Errorf("benchjson: runall_parallel_speedup %v disagrees with the records (Parse would rederive %v)",
			b.RunAllSpeedup, derived)
	}
	if derived := deriveSpeedup(sweepInterp, sweepCompiled); derived != b.ColdSweepSpeedup {
		return fmt.Errorf("benchjson: coldsweep_compiled_speedup %v disagrees with the records (Parse would rederive %v)",
			b.ColdSweepSpeedup, derived)
	}
	if derived := deriveSpeedup(capSerial, capParallel); derived != b.CapacitySpeedup {
		return fmt.Errorf("benchjson: capacity_parallel_speedup %v disagrees with the records (Parse would rederive %v)",
			b.CapacitySpeedup, derived)
	}
	return nil
}

// deriveSpeedup mirrors Parse's summary rule: a ratio when both ends
// were seen, zero otherwise.
func deriveSpeedup(num, den float64) float64 {
	if num > 0 && den > 0 {
		return num / den
	}
	return 0
}

// formatValue renders a float with the shortest representation that
// parses back to the identical bits ('g', precision -1).
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// exactInt rejects B/op- and allocs/op-style counts whose magnitude
// would lose integer precision through ParseLine's float64 parse.
func exactInt(name, unit string, v int64) error {
	if v > maxExactInt || v < -maxExactInt {
		return fmt.Errorf("benchjson: %s: %s count %d exceeds float64's exact-integer range", name, unit, v)
	}
	return nil
}

// hasSpace reports whether s contains any whitespace strings.Fields
// would split on.
func hasSpace(s string) bool {
	return strings.IndexFunc(s, unicode.IsSpace) >= 0
}
