package benchjson

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// genResult draws one encodable Result from a seeded source: names and
// units from whitespace-free alphabets, finite values, B/op and
// allocs/op inside float64's exact-integer range, and always either an
// ns/op value or at least one metric.
func genResult(rng *rand.Rand, i int) Result {
	nameRunes := []rune("BenchmarkQC_abcXYZ0123456789/=-")
	r := Result{Name: "Benchmark"}
	for n := rng.Intn(12); n > 0; n-- {
		r.Name += string(nameRunes[rng.Intn(len(nameRunes))])
	}
	r.Iterations = rng.Int63n(1 << 40)
	nMetrics := rng.Intn(4)
	if nMetrics == 0 || rng.Intn(2) == 0 {
		// Values that exercise both compact and exponent renderings.
		r.NsPerOp = genValue(rng, false)
	}
	if rng.Intn(2) == 0 {
		v := rng.Int63n(maxExactInt)
		r.BytesPerOp = &v
	}
	if rng.Intn(2) == 0 {
		v := rng.Int63n(maxExactInt)
		r.AllocsPerOp = &v
	}
	unitRunes := []rune("abcdefgMB/s%µ")
	for n := 0; n < nMetrics; n++ {
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		unit := "u"
		for k := 1 + rng.Intn(6); k > 0; k-- {
			unit += string(unitRunes[rng.Intn(len(unitRunes))])
		}
		r.Metrics[unit] = genValue(rng, true)
	}
	return r
}

func genValue(rng *rand.Rand, zeroOK bool) float64 {
	switch rng.Intn(5) {
	case 0:
		if zeroOK {
			return 0
		}
		return 1
	case 1:
		return float64(rng.Int63n(1 << 50))
	case 2:
		return rng.Float64() * 1e-9
	case 3:
		return -rng.Float64() * 1e6
	default:
		return rng.NormFloat64() * math.Pow(10, float64(rng.Intn(60)-30))
	}
}

// TestEncodeLineRoundTrip is the quickcheck property behind the wire
// format: for any encodable Result, ParseLine(EncodeLine(r)) == r.
func TestEncodeLineRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1996))
	for i := 0; i < 2000; i++ {
		r := genResult(rng, i)
		line, err := EncodeLine(r)
		if err != nil {
			t.Fatalf("case %d: EncodeLine(%+v): %v", i, r, err)
		}
		back, ok := ParseLine(line)
		if !ok {
			t.Fatalf("case %d: ParseLine rejected EncodeLine output %q", i, line)
		}
		if !reflect.DeepEqual(r, back) {
			t.Fatalf("case %d: round trip diverged\n  in:   %+v\n  line: %q\n  out:  %+v", i, r, line, back)
		}
	}
}

// TestWriteParseRoundTrip pins the whole-Baseline direction: Write's
// text must Parse back to an equal Baseline, headers and derived
// speedup summaries included.
func TestWriteParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		b := Baseline{GOOS: "linux", GOARCH: "amd64"}
		if rng.Intn(2) == 0 {
			b.CPU = "NEC SX-4/32 (modeled)"
		}
		for n := 1 + rng.Intn(6); n > 0; n-- {
			b.Benchmarks = append(b.Benchmarks, genResult(rng, i))
		}
		if rng.Intn(3) == 0 {
			// The speedup pair: Parse rederives the summary from these
			// names, so Write must agree with it.
			b.Benchmarks = append(b.Benchmarks,
				Result{Name: "BenchmarkRunAllSerial-8", Iterations: 100, NsPerOp: 4000},
				Result{Name: "BenchmarkRunAllParallel-8", Iterations: 100, NsPerOp: 1000})
			b.RunAllSpeedup = 4
		}
		if rng.Intn(3) == 0 {
			// The capacity scaling pair works the same way.
			b.Benchmarks = append(b.Benchmarks,
				Result{Name: "BenchmarkCapacityMonteCarlo/workers=1-8", Iterations: 1, NsPerOp: 9e9},
				Result{Name: "BenchmarkCapacityMonteCarlo/workers=8-8", Iterations: 1, NsPerOp: 3e9})
			b.CapacitySpeedup = 3
		}
		var sb strings.Builder
		if err := Write(&sb, b); err != nil {
			t.Fatalf("case %d: Write: %v", i, err)
		}
		back, err := Parse(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("case %d: Parse(Write output): %v\n%s", i, err, sb.String())
		}
		if !reflect.DeepEqual(b, back) {
			t.Fatalf("case %d: baseline round trip diverged\n  in:  %+v\n  out: %+v\ntext:\n%s", i, b, back, sb.String())
		}
	}
}

// TestEncodeLineRejects covers the unencodable shapes: every rejection
// is a Result that ParseLine could not faithfully decode.
func TestEncodeLineRejects(t *testing.T) {
	neg := int64(-5)
	huge := maxExactInt + 1
	cases := []struct {
		name string
		r    Result
	}{
		{"empty name", Result{Name: "", Iterations: 1, NsPerOp: 1}},
		{"whitespace name", Result{Name: "Benchmark X", Iterations: 1, NsPerOp: 1}},
		{"negative iterations", Result{Name: "B", Iterations: -1, NsPerOp: 1}},
		{"contentless", Result{Name: "B", Iterations: 1}},
		{"empty non-nil metrics", Result{Name: "B", Iterations: 1, NsPerOp: 1, Metrics: map[string]float64{}}},
		{"NaN ns/op", Result{Name: "B", Iterations: 1, NsPerOp: math.NaN()}},
		{"Inf metric", Result{Name: "B", Iterations: 1, Metrics: map[string]float64{"x": math.Inf(1)}}},
		{"empty unit", Result{Name: "B", Iterations: 1, Metrics: map[string]float64{"": 1}}},
		{"whitespace unit", Result{Name: "B", Iterations: 1, Metrics: map[string]float64{"a b": 1}}},
		{"reserved unit", Result{Name: "B", Iterations: 1, Metrics: map[string]float64{"ns/op": 1}}},
		{"huge B/op", Result{Name: "B", Iterations: 1, NsPerOp: 1, BytesPerOp: &huge}},
		{"negative-huge allocs", Result{Name: "B", Iterations: 1, NsPerOp: 1, AllocsPerOp: &neg, BytesPerOp: &huge}},
	}
	for _, tc := range cases {
		if line, err := EncodeLine(tc.r); err == nil {
			t.Errorf("%s: EncodeLine accepted %+v as %q", tc.name, tc.r, line)
		}
	}
}

// TestWriteRejects covers the Baseline-level failures: records Parse
// would filter out or summaries it would rederive differently.
func TestWriteRejects(t *testing.T) {
	ok := Result{Name: "BenchmarkOK", Iterations: 1, NsPerOp: 1}
	cases := []struct {
		name string
		b    Baseline
	}{
		{"no records", Baseline{}},
		{"unprefixed name", Baseline{Benchmarks: []Result{{Name: "Bogus", Iterations: 1, NsPerOp: 1}}}},
		{"multiline header", Baseline{GOOS: "li\nnux", Benchmarks: []Result{ok}}},
		{"stale speedup", Baseline{Benchmarks: []Result{ok}, RunAllSpeedup: 2}},
		{"stale capacity speedup", Baseline{Benchmarks: []Result{ok}, CapacitySpeedup: 3}},
	}
	for _, tc := range cases {
		var sb strings.Builder
		if err := Write(&sb, tc.b); err == nil {
			t.Errorf("%s: Write accepted %+v", tc.name, tc.b)
		}
	}
}
