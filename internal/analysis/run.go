package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Run applies every analyzer to every package and returns the
// surviving diagnostics in (file, line, column, analyzer) order.
// Packages are visited in topological import order, so a fact exported
// from a leaf package is visible when its importers are analyzed.
// A diagnostic is suppressed by a comment
//
//	//sx4lint:ignore <analyzer> <reason>
//
// on the reported line or the line immediately above it; the reason is
// mandatory so every waiver documents itself.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunFacts(pkgs, analyzers, NewFactStore())
}

// RunFacts is Run with a caller-supplied fact store: facts already in
// the store (deserialized from dependency facts files in vettool mode)
// are visible to the analyzers, and facts they export accumulate into
// it for the caller to serialize.
func RunFacts(pkgs []*Package, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range topoOrder(pkgs) {
		ignores := ignoreLines(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				facts:     facts,
				ignores:   ignores,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.diagnostics {
				key := lineKey{d.Position.Filename, d.Position.Line, a.Name}
				up := lineKey{d.Position.Filename, d.Position.Line - 1, a.Name}
				if ignores[key] || ignores[up] {
					continue
				}
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

type lineKey struct {
	file     string
	line     int
	analyzer string
}

// topoOrder sorts the packages so every package follows the loaded
// packages it imports — the order facts must flow in. Ties (and the
// traversal itself) break on import path, so the order is
// deterministic regardless of the input order. Only edges between
// loaded packages count; imports resolved from export data or
// placeholders carry no facts of their own to wait for.
func topoOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
		paths = append(paths, p.ImportPath)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(pkgs))
	visited := map[string]bool{}
	var visit func(path string)
	visit = func(path string) {
		if visited[path] {
			return
		}
		visited[path] = true
		pkg := byPath[path]
		if pkg.Types != nil {
			var deps []string
			for _, imp := range pkg.Types.Imports() {
				if _, ok := byPath[imp.Path()]; ok {
					deps = append(deps, imp.Path())
				}
			}
			sort.Strings(deps)
			for _, d := range deps {
				visit(d)
			}
		}
		out = append(out, pkg)
	}
	for _, p := range paths {
		visit(p)
	}
	return out
}

// ignoreLines indexes every sx4lint:ignore comment by (file, line,
// analyzer).
func ignoreLines(pkg *Package) map[lineKey]bool {
	out := map[lineKey]bool{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "sx4lint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "sx4lint:ignore"))
				if len(fields) < 2 {
					// No analyzer name or no reason: not a valid
					// waiver, so it suppresses nothing.
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out[lineKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return out
}
