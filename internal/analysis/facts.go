package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"os"
	"reflect"
	"sort"
)

// A Fact is a typed claim an analyzer attaches to a package-level
// object so that analyses of importing packages can see it — the
// mechanism that turns per-package syntax checks into interprocedural
// ones (a leaf function proven nondeterministic taints its callers
// three packages up). Facts mirror golang.org/x/tools/go/analysis
// facts: each concrete fact is a pointer to a struct, declared in its
// analyzer's FactTypes, and must be gob-serializable so the vettool
// protocol can persist it between per-package vet invocations.
type Fact interface {
	// AFact marks the type as a fact; it has no behaviour.
	AFact()
}

// ObjectPath encodes a package-level object as a stable string key,
// unique within its package: facts are addressed by (package path,
// object path), which survives the object identity split between a
// package type-checked from source and the same package seen through
// export data by an importer. Only package-level objects are
// addressable — functions, methods (keyed by receiver type), types and
// variables; anything else (locals, fields, imported aliases) returns
// false, which confines facts to the objects an importing package can
// actually name.
func ObjectPath(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	switch o := obj.(type) {
	case *types.Func:
		sig, ok := o.Type().(*types.Signature)
		if !ok {
			return "", false
		}
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "", false
			}
			return "M." + named.Obj().Name() + "." + o.Name(), true
		}
		return "F." + o.Name(), true
	case *types.TypeName:
		if o.Parent() != o.Pkg().Scope() {
			return "", false
		}
		return "T." + o.Name(), true
	case *types.Var:
		if o.IsField() || o.Parent() != o.Pkg().Scope() {
			return "", false
		}
		return "V." + o.Name(), true
	}
	return "", false
}

// factKey addresses one stored fact: which analyzer said what about
// which object. A (key, fact-type) pair holds at most one fact — a
// later export overwrites.
type factKey struct {
	analyzer string
	pkg      string
	obj      string
	typ      string
}

// factTypeName names a fact's concrete struct type (pointers
// dereferenced), the last component of the fact key.
func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// A FactStore holds every fact exported during one analysis run (or
// deserialized from dependency facts files in vettool mode). The zero
// value is not usable; call NewFactStore.
type FactStore struct {
	facts map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: map[factKey]Fact{}}
}

func (s *FactStore) put(analyzer, pkg, obj string, fact Fact) {
	s.facts[factKey{analyzer, pkg, obj, factTypeName(fact)}] = fact
}

func (s *FactStore) get(analyzer, pkg, obj, typ string) (Fact, bool) {
	f, ok := s.facts[factKey{analyzer, pkg, obj, typ}]
	return f, ok
}

// Len reports the number of stored facts.
func (s *FactStore) Len() int { return len(s.facts) }

// A FactRecord is the serialized form of one stored fact — the unit
// the vettool facts files (gob) and the round-trip validation work in.
type FactRecord struct {
	Analyzer string
	Pkg      string
	Obj      string
	Fact     Fact
}

// Records returns every stored fact as a deterministically ordered
// slice (sorted by analyzer, package, object, fact type), so two
// stores holding the same facts always encode to the same bytes.
func (s *FactStore) Records() []FactRecord {
	keys := make([]factKey, 0, len(s.facts))
	for k := range s.facts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		if a.pkg != b.pkg {
			return a.pkg < b.pkg
		}
		if a.obj != b.obj {
			return a.obj < b.obj
		}
		return a.typ < b.typ
	})
	recs := make([]FactRecord, 0, len(keys))
	for _, k := range keys {
		recs = append(recs, FactRecord{Analyzer: k.analyzer, Pkg: k.pkg, Obj: k.obj, Fact: s.facts[k]})
	}
	return recs
}

// Encode serializes the store as a gob stream of sorted FactRecords.
// Every fact type must have been registered (RegisterFactTypes).
func (s *FactStore) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s.Records()); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts: %v", err)
	}
	return buf.Bytes(), nil
}

// DecodeFacts deserializes a facts-file payload. An empty payload is a
// valid empty fact set (the file a facts-free package writes).
func DecodeFacts(data []byte) ([]FactRecord, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var recs []FactRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&recs); err != nil {
		return nil, fmt.Errorf("analysis: decoding facts: %v", err)
	}
	return recs, nil
}

// ReadFile merges the facts serialized in a facts file into the store.
// Missing or empty files contribute nothing (a dependency analyzed by
// an older facts-free sx4lint, or a facts-free package).
func (s *FactStore) ReadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	recs, err := DecodeFacts(data)
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	for _, r := range recs {
		s.put(r.Analyzer, r.Pkg, r.Obj, r.Fact)
	}
	return nil
}

// WriteFileValidated atomically-enough writes the store to path and
// then proves the file round-trips: the bytes are reread, decoded and
// re-encoded, and must match what was written. A facts file that does
// not survive its own round-trip would silently drop interprocedural
// findings in every downstream package, so the failure is loud here
// instead.
func (s *FactStore) WriteFileValidated(path string) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		return err
	}
	reread := NewFactStore()
	if err := reread.ReadFile(path); err != nil {
		return fmt.Errorf("analysis: facts file %s does not reread: %v", path, err)
	}
	data2, err := reread.Encode()
	if err != nil {
		return fmt.Errorf("analysis: facts file %s does not re-encode: %v", path, err)
	}
	if !bytes.Equal(data, data2) {
		return fmt.Errorf("analysis: facts file %s does not round-trip: %d bytes written, %d after reread",
			path, len(data), len(data2))
	}
	return nil
}

// RegisterFactTypes registers every declared fact type of the given
// analyzers with gob, a prerequisite for Encode/DecodeFacts. Multiple
// registrations of the same type are harmless.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// FactProducers filters analyzers down to those declaring fact types —
// the set worth running on a package analyzed only for its facts
// (vettool VetxOnly mode).
func FactProducers(analyzers []*Analyzer) []*Analyzer {
	var out []*Analyzer
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			out = append(out, a)
		}
	}
	return out
}
