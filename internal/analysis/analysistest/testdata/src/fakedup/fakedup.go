// Package fakedup expects two identical diagnostics at one position,
// each consumed by its own want pattern.
package fakedup

var boomtwice = 1 // want "boom" "boom"

// F references the trigger again, producing a second double report.
func F() int {
	return boomtwice // want "boom" "boom"
}
