// Package fakedupshort under-declares: two diagnostics land on the
// line but only one want is present, so one must go unmatched.
package fakedupshort

var boomtwice = 1 // want "boom"
