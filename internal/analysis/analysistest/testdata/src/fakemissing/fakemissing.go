// Package fakemissing holds both mismatch directions: a diagnostic
// with no want comment, and a want comment no diagnostic matches.
package fakemissing

var boom = 1

var quiet = 2 // want "boom"
