// Package fakewaiver pins waiver-name matching: a waiver naming the
// wrong analyzer suppresses nothing (the diagnostic still fires and
// needs its want), while a correctly named waiver removes the
// diagnostic entirely.
package fakewaiver

//sx4lint:ignore wronganalyzer a waiver for an unknown analyzer must not suppress other analyzers
var boom = 1 // want "boom"

//sx4lint:ignore boomer fixture demonstrating a correctly named waiver
var hushed = boom
