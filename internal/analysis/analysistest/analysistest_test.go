package analysistest_test

import (
	"go/ast"
	"strings"
	"testing"

	"sx4bench/internal/analysis"
	"sx4bench/internal/analysis/analysistest"
)

// boomer reports "boom" at every identifier named boom, and twice at
// every identifier named boomtwice — a minimal analyzer for pinning
// the fixture runner's matching behaviour.
var boomer = &analysis.Analyzer{
	Name: "boomer",
	Doc:  "test analyzer: reports at idents named boom (once) and boomtwice (twice)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				switch id.Name {
				case "boom":
					pass.Reportf(id.Pos(), "boom")
				case "boomtwice":
					pass.Reportf(id.Pos(), "boom")
					pass.Reportf(id.Pos(), "boom")
				}
				return true
			})
		}
		return nil
	},
}

func runBoomer(t *testing.T, importPath string) []string {
	t.Helper()
	pkgs, err := analysis.LoadFixtures("testdata", importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", importPath, err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{boomer})
	if err != nil {
		t.Fatalf("running boomer on %s: %v", importPath, err)
	}
	return analysistest.Check(pkgs, diags)
}

// TestMissingWant covers both mismatch directions at once: a
// diagnostic with no want is "unexpected", a want with no diagnostic
// is "no diagnostic matching".
func TestMissingWant(t *testing.T) {
	problems := runBoomer(t, "fakemissing")
	if len(problems) != 2 {
		t.Fatalf("got %d problems, want 2: %q", len(problems), problems)
	}
	if !strings.Contains(problems[0], "unexpected diagnostic") {
		t.Errorf("problem[0] = %q, want an unexpected-diagnostic report", problems[0])
	}
	if !strings.Contains(problems[1], `no diagnostic matching "boom"`) {
		t.Errorf("problem[1] = %q, want an unmatched-want report", problems[1])
	}
}

// TestDuplicateDiagnostics: two identical diagnostics at one position
// are satisfied by two want patterns on the line, each consumed once.
func TestDuplicateDiagnostics(t *testing.T) {
	if problems := runBoomer(t, "fakedup"); len(problems) != 0 {
		t.Fatalf("fixture with matched duplicates reported problems: %q", problems)
	}
}

// TestDuplicateUnderCounted: the same duplicate pair against a single
// want leaves exactly one diagnostic unexpected — duplicates are not
// silently collapsed.
func TestDuplicateUnderCounted(t *testing.T) {
	problems := runBoomer(t, "fakedupshort")
	if len(problems) != 1 || !strings.Contains(problems[0], "unexpected diagnostic") {
		t.Fatalf("got %q, want exactly one unexpected-diagnostic report", problems)
	}
}

// TestWaiverNameMatching: a waiver naming an unknown analyzer
// suppresses nothing (its line still diagnoses, and the want matches),
// while the correctly named waiver removes its diagnostic entirely.
func TestWaiverNameMatching(t *testing.T) {
	if problems := runBoomer(t, "fakewaiver"); len(problems) != 0 {
		t.Fatalf("waiver fixture reported problems: %q", problems)
	}
}
