// Package analysistest runs analyzers over fixture packages and
// checks their diagnostics against // want expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live in GOPATH-style trees: <testdata>/src/<importpath>/
// holds the package's .go files, and the import path is the directory
// path relative to src. Fixtures therefore mimic real module paths
// ("sx4bench/internal/ncar"), so analyzers whose scope is keyed on
// import paths are exercised with the paths they will see in the
// repository. A line expecting a diagnostic carries a comment
//
//	// want `regexp`
//
// (one or more, double- or back-quoted); every diagnostic must match a
// want on its line and every want must be matched.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"sx4bench/internal/analysis"
)

// Run loads the fixture packages — together, in order, so a later
// package may import an earlier one — and applies the analyzer in one
// analysis.Run, which lets // want expectations cover cross-package
// fact flow: a fact exported from the first fixture package is
// visible while checking the second.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	pkgs, err := analysis.LoadFixtures(testdata, importPaths...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", importPaths, err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, p := range Check(pkgs, diags) {
		t.Error(p)
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Check matches diagnostics against the fixtures' // want comments
// and returns one problem string per mismatch: an "unexpected
// diagnostic" for every diagnostic no want matches, and a "no
// diagnostic matching" for every unmatched want. It is the testable
// seam under Run; an empty result means the fixture is satisfied.
func Check(pkgs []*analysis.Package, diags []analysis.Diagnostic) []string {
	var problems []string
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					i := strings.Index(text, "want ")
					if i < 0 || strings.TrimSpace(text[:i]) != "" {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, pat := range quoted(text[i+len("want "):]) {
						re, err := regexp.Compile(pat)
						if err != nil {
							problems = append(problems, fmt.Sprintf("%s: bad want pattern %q: %v", pos, pat, err))
							continue
						}
						wants = append(wants, &want{pos.Filename, pos.Line, re, false})
					}
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Position.Filename && w.line == d.Position.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.hit {
			problems = append(problems, fmt.Sprintf("%s: no diagnostic matching %q",
				token.Position{Filename: w.file, Line: w.line}, w.re))
		}
	}
	return problems
}

// quoted extracts consecutive double- or back-quoted strings.
func quoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		q := s[0]
		if q != '"' && q != '`' {
			return out
		}
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			return out
		}
		out = append(out, s[1:1+end])
		s = s[end+2:]
	}
}
