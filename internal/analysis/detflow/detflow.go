// Package detflow is an interprocedural taint analysis for
// nondeterminism. A function that transitively reaches a
// nondeterminism source — the wall clock, the global math/rand
// stream, randomized map iteration order, or goroutine completion
// order (multi-way select) — is tagged with a Nondeterministic fact,
// exported through the analysis framework's fact store so the taint
// crosses package boundaries. Reaching such a function from a
// critical context is a diagnostic: the root sx4bench package, the
// core/ncar/check render-and-verify packages, and any Fingerprint
// method anywhere in the module, because those are the paths whose
// outputs the 21 byte-identical goldens (and the memo, fleet and
// sx4d caches keyed on fingerprints) pin down.
//
// A waiver comment
//
//	//sx4lint:ignore detflow <reason>
//
// on a call site is a taint *barrier*, not just a suppression: it
// asserts, with a written reason, that the callee's nondeterminism
// does not reach this caller's output, so the caller does not inherit
// the taint. Without barrier semantics one audited facade call would
// cascade waivers all the way up the call graph.
package detflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sx4bench/internal/analysis"
)

// Nondeterministic is the fact exported for every package-level
// function or method whose result or effects can vary between runs
// with identical inputs. Reason is a human-readable chain back to the
// intrinsic source ("calls serve.answer, which is nondeterministic:
// selects between 2 ready channel operations...").
type Nondeterministic struct {
	Reason string
}

// AFact marks Nondeterministic as an analysis fact.
func (*Nondeterministic) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc: "taint analysis: functions transitively reaching the wall clock, global rand, map order or goroutine ordering " +
		"are tagged Nondeterministic via facts; any flow into the root package, core/ncar/check, or a Fingerprint method is flagged",
	FactTypes: []analysis.Fact{(*Nondeterministic)(nil)},
	Run:       run,
}

// timeFuncs are the package time functions that read the wall clock
// (or arm a wall-clock timer). Monotonic readings are no better for
// determinism than absolute ones.
var timeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTicker": true, "NewTimer": true,
}

// criticalPrefixes are the package subtrees whose functions may not
// reach nondeterminism: everything under them feeds golden-checked
// artifacts or verification verdicts.
var criticalPrefixes = []string{
	"sx4bench/internal/core",
	"sx4bench/internal/ncar",
	"sx4bench/internal/check",
}

// maxReason caps taint reason chains so deep call graphs don't grow
// unbounded gob payloads or unreadable diagnostics.
const maxReason = 200

type source struct {
	pos    token.Pos
	reason string
}

type callEdge struct {
	pos    token.Pos
	callee *types.Func
}

type funcInfo struct {
	obj     *types.Func
	sources []source
	calls   []callEdge
}

func run(pass *analysis.Pass) error {
	var infos []*funcInfo
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			infos = append(infos, collect(pass, obj, decl.Body))
		}
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].obj.Pos() < infos[j].obj.Pos() })

	// Resolve cross-package edges against imported facts once: a
	// callee outside this package is tainted iff its source package
	// exported a Nondeterministic fact for it.
	external := map[*types.Func]string{}
	for _, fi := range infos {
		for _, e := range fi.calls {
			if e.callee.Pkg() == pass.Pkg {
				continue
			}
			if _, seen := external[e.callee]; seen {
				continue
			}
			var fact Nondeterministic
			if pass.ImportObjectFact(e.callee, &fact) {
				external[e.callee] = fact.Reason
			}
		}
	}

	// Fixpoint over the local call graph, seeded by intrinsic sources
	// and externally tainted callees. Deterministic because infos is
	// position-sorted and each function's taint reason is its first
	// cause in that order.
	tainted := map[*types.Func]string{}
	for changed := true; changed; {
		changed = false
		for _, fi := range infos {
			if _, done := tainted[fi.obj]; done {
				continue
			}
			if len(fi.sources) > 0 {
				tainted[fi.obj] = fi.sources[0].reason
				changed = true
				continue
			}
			for _, e := range fi.calls {
				reason, ok := tainted[e.callee]
				if !ok {
					reason, ok = external[e.callee]
				}
				if ok {
					tainted[fi.obj] = chain(e.callee, reason)
					changed = true
					break
				}
			}
		}
	}

	for _, fi := range infos {
		if reason, ok := tainted[fi.obj]; ok {
			pass.ExportObjectFact(fi.obj, &Nondeterministic{Reason: reason})
		}
	}

	// Diagnostics: critical functions may neither contain a source nor
	// call anything tainted.
	for _, fi := range infos {
		if !critical(pass.Pkg.Path(), fi.obj) {
			continue
		}
		for _, s := range fi.sources {
			pass.Reportf(s.pos, "%s %s; this is a golden-checked path, so derive the value from the run's seed or fingerprint instead",
				funcDesc(fi.obj), s.reason)
		}
		for _, e := range fi.calls {
			reason, ok := tainted[e.callee]
			if !ok {
				reason, ok = external[e.callee]
			}
			if !ok {
				continue
			}
			pass.Reportf(e.pos, "%s calls %s, which is nondeterministic: %s",
				funcDesc(fi.obj), calleeName(e.callee), clip(reason))
		}
	}
	return nil
}

// collect gathers one function's intrinsic nondeterminism sources and
// static call edges. Function literals inside the body are attributed
// to the enclosing declaration — conservative, since the literal runs
// on some path reachable from it. Waived sites are dropped here, so a
// waiver both silences the diagnostic and stops taint propagating.
func collect(pass *analysis.Pass, obj *types.Func, body *ast.BlockStmt) *funcInfo {
	fi := &funcInfo{obj: obj}
	sortedAfter := sortCalls(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			var id *ast.Ident
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			}
			if id == nil {
				return true
			}
			callee, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || pass.Waived(n.Pos()) {
				return true
			}
			if reason, ok := intrinsic(callee); ok {
				fi.sources = append(fi.sources, source{n.Pos(), reason})
			} else if callee.Pkg() != nil {
				fi.calls = append(fi.calls, callEdge{n.Pos(), callee})
			}
		case *ast.SelectStmt:
			comm := 0
			for _, s := range n.Body.List {
				if cc, ok := s.(*ast.CommClause); ok && cc.Comm != nil {
					comm++
				}
			}
			if comm >= 2 && !pass.Waived(n.Pos()) {
				fi.sources = append(fi.sources, source{n.Pos(),
					fmt.Sprintf("selects between %d channel operations, so the taken branch depends on goroutine completion order", comm)})
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap && !pass.Waived(n.Pos()) {
					if name, leak := rangeLeaksOrder(pass, n, sortedAfter); leak {
						fi.sources = append(fi.sources, source{n.For,
							fmt.Sprintf("iterates a map appending to %s with no later sort, leaking randomized map order", name)})
					}
				}
			}
		}
		return true
	})
	return fi
}

// sortCalls indexes sort/slices sort calls in the body by the object
// of their first argument (the collect-then-sort exemption, shared
// with maporder's rule).
func sortCalls(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object][]ast.Node {
	out := map[types.Object][]ast.Node{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		if obj := rootObj(pass, call.Args[0]); obj != nil {
			out[obj] = append(out[obj], call)
		}
		return true
	})
	return out
}

// rangeLeaksOrder reports whether a map range appends to a variable
// declared outside the loop that is never sorted afterwards.
func rangeLeaksOrder(pass *analysis.Pass, rng *ast.RangeStmt, sortedAfter map[types.Object][]ast.Node) (string, bool) {
	var name string
	leak := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || leak {
			return !leak
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok || fun.Name != "append" || len(call.Args) == 0 {
			return true
		}
		if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); !isBuiltin {
			return true
		}
		obj := rootObj(pass, call.Args[0])
		if obj == nil || (obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()) {
			return true
		}
		for _, s := range sortedAfter[obj] {
			if s.Pos() > rng.End() {
				return true
			}
		}
		name, leak = obj.Name(), true
		return false
	})
	return name, leak
}

// rootObj unwraps conversions/parens/single-arg calls to the object
// of the underlying identifier, if any.
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[v]
		case *ast.CallExpr:
			if len(v.Args) != 1 {
				return nil
			}
			e = v.Args[0]
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// intrinsic reports whether callee is itself a nondeterminism source.
func intrinsic(callee *types.Func) (string, bool) {
	pkg := callee.Pkg()
	if pkg == nil {
		return "", false
	}
	if sig, ok := callee.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	switch pkg.Path() {
	case "time":
		if timeFuncs[callee.Name()] {
			return "reads the wall clock via time." + callee.Name(), true
		}
	case "math/rand", "math/rand/v2":
		// Exported non-constructor entry points draw from the
		// process-wide auto-seeded stream. Constructors (New,
		// NewSource, NewPCG, ...) and package internals are not draws.
		if token.IsExported(callee.Name()) && !strings.HasPrefix(callee.Name(), "New") {
			return "draws from the shared " + pkg.Path() + " stream via rand." + callee.Name(), true
		}
	}
	return "", false
}

// critical reports whether fn's results must be deterministic: the
// root package, the render-and-verify subtrees, or any fingerprint
// method anywhere (fingerprints key the memo, FPCache and sx4d
// response cache, so a wobbling fingerprint silently forks cache
// entries).
func critical(pkgPath string, fn *types.Func) bool {
	if strings.EqualFold(fn.Name(), "fingerprint") {
		return true
	}
	if pkgPath == "sx4bench" {
		return true
	}
	for _, p := range criticalPrefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// chain extends a taint reason one call deeper, clipped to maxReason.
func chain(callee *types.Func, reason string) string {
	return clip(fmt.Sprintf("calls %s, which is nondeterministic: %s", calleeName(callee), reason))
}

func clip(s string) string {
	if len(s) > maxReason {
		return s[:maxReason-3] + "..."
	}
	return s
}

func calleeName(fn *types.Func) string {
	base := ""
	if fn.Pkg() != nil {
		base = analysis.PathBase(fn.Pkg().Path()) + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return base + named.Obj().Name() + "." + fn.Name()
		}
	}
	return base + fn.Name()
}

func funcDesc(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "method " + calleeName(fn)
	}
	return "function " + fn.Name()
}
