package detflow

import (
	"testing"

	"sx4bench/internal/analysis"
	"sx4bench/internal/analysis/analysistest"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer,
		"sx4bench/internal/fakeleaf",
		"sx4bench/internal/core/fakerender",
		"sx4bench/internal/fakebackoff",
	)
}

// TestFactExport pins the fact surface itself: which objects of the
// leaf fixture carry a Nondeterministic fact after one run, and that
// the store holding them survives a gob round-trip (the form the vet
// facts files use).
func TestFactExport(t *testing.T) {
	pkgs, err := analysis.LoadFixtures("testdata", "sx4bench/internal/fakeleaf")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	store := analysis.NewFactStore()
	if _, err := analysis.RunFacts(pkgs, []*analysis.Analyzer{Analyzer}, store); err != nil {
		t.Fatalf("running detflow: %v", err)
	}

	got := map[string]bool{}
	for _, r := range store.Records() {
		if r.Analyzer != "detflow" || r.Pkg != "sx4bench/internal/fakeleaf" {
			t.Errorf("unexpected fact owner: analyzer=%q pkg=%q", r.Analyzer, r.Pkg)
			continue
		}
		if _, ok := r.Fact.(*Nondeterministic); !ok {
			t.Errorf("fact on %s has type %T, want *Nondeterministic", r.Obj, r.Fact)
		}
		got[r.Obj] = true
	}
	for _, obj := range []string{"F.WallSeed", "F.Jitter", "F.Pick", "F.Keys", "F.Indirect", "M.Thing.Fingerprint"} {
		if !got[obj] {
			t.Errorf("no Nondeterministic fact exported for %s", obj)
		}
	}
	for _, obj := range []string{"F.SortedKeys", "F.Total"} {
		if got[obj] {
			t.Errorf("clean function %s carries a Nondeterministic fact", obj)
		}
	}

	analysis.RegisterFactTypes([]*analysis.Analyzer{Analyzer})
	data, err := store.Encode()
	if err != nil {
		t.Fatalf("encoding facts: %v", err)
	}
	recs, err := analysis.DecodeFacts(data)
	if err != nil {
		t.Fatalf("decoding facts: %v", err)
	}
	if len(recs) != store.Len() {
		t.Fatalf("round-trip changed fact count: %d != %d", len(recs), store.Len())
	}
}
