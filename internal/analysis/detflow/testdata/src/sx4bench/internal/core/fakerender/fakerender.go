// Package fakerender is a critical fixture package (under
// sx4bench/internal/core): calling anything tainted is a diagnostic.
// It imports fakeleaf, so every flagged call here proves a
// Nondeterministic fact crossed the package boundary.
package fakerender

import (
	"fmt"
	"io"
	"math/rand"

	"sx4bench/internal/fakeleaf"
)

// Stamp contains a direct source inside a critical package.
func Stamp() float64 {
	return rand.Float64() // want `function Stamp draws from the shared math/rand stream via rand\.Float64`
}

// RenderHeader reaches the wall clock through an imported function —
// only the fact exported from fakeleaf can tell.
func RenderHeader(w io.Writer) {
	fmt.Fprintf(w, "seed=%d\n", fakeleaf.WallSeed()) // want `calls fakeleaf\.WallSeed, which is nondeterministic: reads the wall clock`
}

// Wobble reaches the global rand stream through an import.
func Wobble() float64 {
	return fakeleaf.Jitter() // want `calls fakeleaf\.Jitter, which is nondeterministic: draws from the shared math/rand stream`
}

// Deep reaches the wall clock two hops away: fakeleaf.Indirect is
// only tainted transitively, so this checks the leaf-local fixpoint
// fed the exported fact.
func Deep() int64 {
	return fakeleaf.Indirect() // want `calls fakeleaf\.Indirect, which is nondeterministic: calls fakeleaf\.WallSeed`
}

// WriteSorted is clean: SortedKeys carries no fact.
func WriteSorted(w io.Writer, m map[string]int) {
	for _, k := range fakeleaf.SortedKeys(m) {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// WriteTotal is clean: Total carries no fact.
func WriteTotal(w io.Writer, m map[string]int) {
	fmt.Fprintf(w, "total=%d\n", fakeleaf.Total(m))
}

// WriteReviewed calls a tainted function behind an audited waiver.
// The waiver suppresses the diagnostic AND acts as a taint barrier.
func WriteReviewed() int64 {
	//sx4lint:ignore detflow fixture: seed is logged for operators, never rendered into golden output
	return fakeleaf.WallSeed()
}

// CallsReviewed proves the barrier: WriteReviewed did not inherit the
// taint, so this call is clean — no cascade of waivers up the stack.
func CallsReviewed() int64 {
	return WriteReviewed()
}
