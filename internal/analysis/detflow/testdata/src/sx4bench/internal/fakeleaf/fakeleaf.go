// Package fakeleaf is a non-critical fixture package: its
// nondeterministic functions produce facts, not diagnostics — except
// the Fingerprint method, which is critical by name everywhere.
package fakeleaf

import (
	"math/rand"
	"sort"
	"time"
)

// WallSeed is tainted directly: it reads the wall clock.
func WallSeed() int64 {
	return time.Now().UnixNano()
}

// Jitter is tainted directly: it draws from the global rand stream.
func Jitter() float64 {
	return rand.Float64()
}

// Pick is tainted: which branch runs depends on goroutine completion
// order.
func Pick(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Keys is tainted: randomized map order leaks into the result.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys is clean: the collect-then-sort idiom.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Total is clean: an order-insensitive integer fold.
func Total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Indirect is tainted transitively through WallSeed.
func Indirect() int64 {
	return WallSeed() + 1
}

// Thing exists to carry a Fingerprint method.
type Thing struct{ N int64 }

// Fingerprint is critical by name even in a non-critical package:
// fingerprints key caches, so they may never wobble.
func (t Thing) Fingerprint() int64 {
	return t.N + time.Now().UnixNano() // want `method fakeleaf\.Thing\.Fingerprint reads the wall clock via time\.Now`
}
