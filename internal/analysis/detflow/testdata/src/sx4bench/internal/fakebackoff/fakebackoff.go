// Package fakebackoff is a detflow fixture mirroring the resilient
// client's jitter (internal/client): seeded SplitMix64 jitter is a
// pure function and carries no fact, global-rand jitter is tainted,
// and a Fingerprint that folds the shared stream in is a diagnostic
// even out here — fingerprints key the daemon's cache, so a wobbling
// one would silently split cache entries.
package fakebackoff

import (
	"math/rand"
	"time"
)

// Jitter is clean: the wait is a pure function of (seed, attempt), the
// property the thundering-herd test pins.
func Jitter(seed uint64, attempt int) time.Duration {
	x := seed + 0x9e3779b97f4a7c15*uint64(attempt)
	x ^= x >> 31
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return time.Duration(x % uint64(time.Second))
}

// HerdJitter is tainted (fact, not diagnostic — this is not a
// critical package): it draws from the shared global stream, so two
// runs of the same client schedule different retries.
func HerdJitter() time.Duration {
	return time.Duration(rand.Int63n(int64(time.Second)))
}

// Key exists to carry a Fingerprint method.
type Key struct{ Seed uint64 }

// Fingerprint is critical by name even in a leaf package: cache keys
// may never wobble between runs.
func (k Key) Fingerprint() uint64 {
	return k.Seed ^ uint64(rand.Int63()) // want `method fakebackoff\.Key\.Fingerprint draws from the shared math/rand stream via rand\.Int63`
}
