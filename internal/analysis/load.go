package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir with the go command, compiles their
// dependency export data, and type-checks each matched package from
// source. Test files are not loaded (see Pass.Files).
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	var roots []*listPkg
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && p.Name != "" {
			roots = append(roots, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, p := range roots {
		pkg, err := typecheck(fset, imp, p.ImportPath, p.Dir, p.GoFiles, true)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportImporter resolves import paths through compiler export data
// listed in exports; paths outside the map resolve to empty
// placeholder packages (fixture mode references only names it
// resolves, and the strict repo load always has a complete map).
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return &fallbackImporter{
		gc:      gc,
		exports: exports,
		source:  map[string]*types.Package{},
		fakes:   map[string]*types.Package{},
	}
}

type fallbackImporter struct {
	gc      types.Importer
	exports map[string]string
	// source holds packages already type-checked from source in this
	// load group (fixture packages importing earlier fixture packages);
	// it wins over export data so facts keyed on the source-checked
	// objects line up with what importers resolve.
	source map[string]*types.Package
	fakes  map[string]*types.Package
}

func (fi *fallbackImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := fi.source[path]; ok {
		return p, nil
	}
	if _, ok := fi.exports[path]; ok {
		return fi.gc.Import(path)
	}
	if p, ok := fi.fakes[path]; ok {
		return p, nil
	}
	p := types.NewPackage(path, PathBase(path))
	p.MarkComplete()
	fi.fakes[path] = p
	return p, nil
}

// typecheck parses files and type-checks them as one package. When
// strict, the first type error aborts; fixture packages import
// placeholder packages and tolerate the resulting reference errors.
func typecheck(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string, strict bool) (*Package, error) {
	pkg := &Package{ImportPath: importPath, Dir: dir, Fset: fset}
	for _, name := range files {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		pkg.GoFiles = append(pkg.GoFiles, path)
		pkg.Syntax = append(pkg.Syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(importPath, fset, pkg.Syntax, info)
	if strict && firstErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, firstErr)
	}
	pkg.Types = tpkg
	pkg.TypesInfo = info
	return pkg, nil
}

// LoadFixture loads one analysistest fixture package: every .go file
// directly in dir, type-checked as importPath. Imports resolvable by
// the go command (the standard library, and real module packages when
// a fixture mimics one) are loaded from export data; anything else
// becomes an empty placeholder, so fixtures may import fictional
// paths as long as they only blank-import them.
func LoadFixture(dir, importPath string) (*Package, error) {
	// dir is testdata/src/<importPath>; recover the testdata root.
	testdata := dir
	for range strings.Split(importPath, "/") {
		testdata = filepath.Dir(testdata)
	}
	testdata = filepath.Dir(testdata) // strip "src"
	pkgs, err := LoadFixtures(testdata, importPath)
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// LoadFixtures loads several fixture packages from a GOPATH-shaped
// testdata tree (testdata/src/<importPath>/*.go) into one shared
// FileSet, in the given order. A later package may import an earlier
// one — the import resolves to the source-checked earlier package, the
// setup that lets fixture tests exercise cross-package fact flow.
func LoadFixtures(testdata string, importPaths ...string) ([]*Package, error) {
	fixture := map[string]bool{}
	for _, ip := range importPaths {
		fixture[ip] = true
	}

	files := make([][]string, len(importPaths))
	var imports []string
	seen := map[string]bool{}
	scanFset := token.NewFileSet()
	for i, ip := range importPaths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(ip))
		matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil || len(matches) == 0 {
			return nil, fmt.Errorf("analysis: no fixture files in %s", dir)
		}
		for j, m := range matches {
			if abs, err := filepath.Abs(m); err == nil {
				matches[j] = abs
			}
		}
		files[i] = matches
		for _, m := range matches {
			f, err := parser.ParseFile(scanFset, m, nil, parser.ImportsOnly)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			for _, spec := range f.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if !seen[path] && !fixture[path] {
					seen[path] = true
					imports = append(imports, path)
				}
			}
		}
	}
	exports, err := stdExports(imports)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports).(*fallbackImporter)
	pkgs := make([]*Package, len(importPaths))
	for i, ip := range importPaths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(ip))
		pkg, err := typecheck(fset, imp, ip, dir, files[i], false)
		if err != nil {
			return nil, err
		}
		if pkg.Types != nil {
			imp.source[ip] = pkg.Types
		}
		pkgs[i] = pkg
	}
	return pkgs, nil
}

// stdExports runs `go list -export` for the given (stdlib) import
// paths and their dependencies, returning the export-data map. The
// fixture loader uses it to resolve real imports inside testdata
// packages.
func stdExports(paths []string) (map[string]string, error) {
	exports := map[string]string{}
	if len(paths) == 0 {
		return exports, nil
	}
	args := append([]string{"list", "-e", "-export", "-json", "-deps"}, paths...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(paths, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
