// Package layering enforces the machine-agnostic execution boundary.
//
// Everything above the model layer — the experiment engine, the NCAR
// runners, the verification subsystem, the application traces, the
// CLIs and examples — must speak sx4bench/internal/target: the Target
// interface plus the name registry. Importing the concrete SX-4 model
// (internal/sx4) or the comparator models (internal/machine) from up
// there would re-couple runners to one backend and bypass the
// registry, which is the only sanctioned way to construct machines.
//
// Exempt: the model packages themselves (internal/sx4/... and
// internal/machine, which implement Target and register the
// constructors) and the root facade package sx4bench, the curated
// public surface that links the models in and re-exports the SX-4
// types. The trace vocabulary (internal/sx4/prog) and the subsystem
// models (iop, ixs, xmu) are shared leaves, not forbidden.
package layering

import (
	"strings"

	"sx4bench/internal/analysis"
)

var forbidden = map[string]string{
	"sx4bench/internal/sx4":     "the concrete SX-4 model",
	"sx4bench/internal/machine": "the concrete comparator models",
}

var Analyzer = &analysis.Analyzer{
	Name: "layering",
	Doc:  "packages above the model layer must import sx4bench/internal/target, never internal/sx4 or internal/machine directly",
	Run:  run,
}

// exempt reports whether the importing package is part of the model
// layer (or its sanctioned assembly point) and may name the concrete
// models.
func exempt(path string) bool {
	switch {
	case path == "sx4bench": // the curated facade
		return true
	case path == "sx4bench/internal/machine":
		return true
	case path == "sx4bench/internal/sx4",
		strings.HasPrefix(path, "sx4bench/internal/sx4/"):
		return true
	}
	return false
}

func run(pass *analysis.Pass) error {
	if exempt(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if what, bad := forbidden[path]; bad {
				pass.Reportf(spec.Pos(),
					"import of %s (%s) above the model layer: depend on sx4bench/internal/target and the machine registry instead",
					path, what)
			}
		}
	}
	return nil
}
