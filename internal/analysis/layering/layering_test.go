package layering_test

import (
	"testing"

	"sx4bench/internal/analysis/analysistest"
	"sx4bench/internal/analysis/layering"
)

func TestLayering(t *testing.T) {
	analysistest.Run(t, "testdata", layering.Analyzer,
		"sx4bench/internal/fakerunner",
		"sx4bench/internal/fakesweep",
		"sx4bench/internal/fleet",
		"sx4bench/internal/machine",
		"sx4bench/internal/serve",
		"sx4bench/internal/fakectl",
	)
}
