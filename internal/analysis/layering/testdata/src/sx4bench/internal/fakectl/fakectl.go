// Package fakectl is a layering fixture mirroring the sx4ctl client
// stack (internal/client + cmd/sx4ctl): clients live above the model
// layer and speak the daemon's wire vocabulary. Reaching into a
// concrete model from a client — say, to "predict" an answer locally
// instead of asking the daemon — would bypass both the registry and
// the server's cache, so it is flagged like any other layer breach.
package fakectl

import (
	_ "sx4bench/internal/machine" // want `import of sx4bench/internal/machine \(the concrete comparator models\) above the model layer`
	_ "sx4bench/internal/serve"   // the wire vocabulary: requests, responses, stats
)
