// Package fakerunner is a layering fixture: a package above the model
// layer, which must speak the target registry.
package fakerunner

import (
	_ "sx4bench/internal/machine"  // want `import of sx4bench/internal/machine \(the concrete comparator models\) above the model layer`
	_ "sx4bench/internal/sx4"      // want `import of sx4bench/internal/sx4 \(the concrete SX-4 model\) above the model layer`
	_ "sx4bench/internal/sx4/prog" // the trace vocabulary is a shared leaf
	_ "sx4bench/internal/target"   // the sanctioned dependency
)
