// Package machine mimics the comparator-model package, which is part
// of the model layer and may import the SX-4 model directly.
package machine

import (
	_ "sx4bench/internal/sx4"
)
