// Package serve is a layering fixture mirroring the sx4d daemon's
// service layer: it sits above the model layer, so it must reach the
// machines through the target registry and the ncar entry points —
// never the concrete model packages.
package serve

import (
	_ "sx4bench/internal/benchjson" // the wire vocabulary is a shared leaf
	_ "sx4bench/internal/machine"   // want `import of sx4bench/internal/machine \(the concrete comparator models\) above the model layer`
	_ "sx4bench/internal/ncar"      // the sanctioned runner entry points
	_ "sx4bench/internal/sx4"       // want `import of sx4bench/internal/sx4 \(the concrete SX-4 model\) above the model layer`
	_ "sx4bench/internal/target"    // the sanctioned dependency
)
