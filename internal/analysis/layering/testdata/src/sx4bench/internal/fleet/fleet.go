// Package fleet is a layering fixture mirroring the capacity engine:
// it stands fleets of nodes from registry specs, so it must build
// every machine through sx4bench/internal/target — reaching for the
// concrete model packages would hardwire the fleet to one backend and
// bypass the registry's name resolution.
package fleet

import (
	_ "sx4bench/internal/fault"   // per-node fault plans are a sanctioned leaf
	_ "sx4bench/internal/machine" // want `import of sx4bench/internal/machine \(the concrete comparator models\) above the model layer`
	_ "sx4bench/internal/superux" // the per-node operating-system model is a sanctioned leaf
	_ "sx4bench/internal/sx4"     // want `import of sx4bench/internal/sx4 \(the concrete SX-4 model\) above the model layer`
	_ "sx4bench/internal/target"  // the sanctioned dependency
)
