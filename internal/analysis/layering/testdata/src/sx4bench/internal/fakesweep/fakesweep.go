// Package fakesweep is a layering fixture for the compiled-trace path:
// a cold-sweep driver above the model layer pre-flattens traces with
// internal/sx4/prog and executes them through the optional
// target.CompiledRunner interface — both sanctioned — but must not
// reach for the concrete engines to get at their compiled internals.
package fakesweep

import (
	_ "sx4bench/internal/machine"  // want `import of sx4bench/internal/machine \(the concrete comparator models\) above the model layer`
	_ "sx4bench/internal/sx4"      // want `import of sx4bench/internal/sx4 \(the concrete SX-4 model\) above the model layer`
	_ "sx4bench/internal/sx4/prog" // prog.Compile is the sanctioned way to pre-flatten a trace
	_ "sx4bench/internal/target"   // target.CompiledRunner is the sanctioned way to execute one
)
