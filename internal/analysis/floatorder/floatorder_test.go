package floatorder

import (
	"testing"

	"sx4bench/internal/analysis/analysistest"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "sx4bench/internal/fakesweeper")
}
