// Package fakesweeper exercises floatorder against the real sched
// package: the callbacks below are exactly the shapes the fleet
// Monte Carlo and the NCAR sweeps use.
package fakesweeper

import (
	"io"

	"sx4bench/internal/core/sched"
)

// BadSum shares a float accumulator across workers.
func BadSum(n int) float64 {
	sum := 0.0
	sched.ForEach(0, n, func(i int) error {
		sum += float64(i) // want `order-dependent float reduction: "\+=" on sum`
		return nil
	})
	return sum
}

// BadProduct multiplies in completion order.
func BadProduct(n int) float64 {
	p := 1.0
	sched.ForEachGrain(0, n, 8, func(i int) error {
		p *= 1.0001 // want `order-dependent float reduction: "\*=" on p`
		return nil
	})
	return p
}

// BadExplicit spells the compound assignment out long-hand.
func BadExplicit(n int) float64 {
	sum := 0.0
	sched.ForEach(0, n, func(i int) error {
		sum = sum + float64(i) // want `order-dependent float reduction: "self-referential =" on sum`
		return nil
	})
	return sum
}

// BadTask accumulates through a pointer from a Task Run function.
func BadTask(total *float64) sched.Task {
	return sched.Task{
		ID: "t",
		Run: func(w io.Writer) error {
			*total += 1.0 // want `order-dependent float reduction: "\+=" on total`
			return nil
		},
	}
}

// GoodSum uses the fixed-order helper.
func GoodSum(n int) float64 {
	return sched.SumOrdered(0, n, func(i int) float64 {
		return float64(i)
	})
}

// GoodMap collects per-index values and folds them serially.
func GoodMap(n int) float64 {
	vals, _ := sched.Map(0, n, func(i int) (float64, error) {
		return float64(i), nil
	})
	total := 0.0
	for _, v := range vals {
		total += v
	}
	return total
}

// GoodLocal accumulates into a variable local to the callback, then
// publishes it with a per-index write.
func GoodLocal(n int) []float64 {
	out := make([]float64, n)
	sched.ForEach(0, n, func(i int) error {
		acc := 0.0
		for j := 0; j < 4; j++ {
			acc += float64(i * j)
		}
		out[i] = acc
		return nil
	})
	return out
}

// CountEven mutates a shared int: not floatorder's concern (no
// rounding to reorder).
func CountEven(n int) int {
	count := 0
	sched.ForEach(1, n, func(i int) error {
		if i%2 == 0 {
			count++
		}
		return nil
	})
	return count
}
