// Package floatorder flags order-dependent float reductions inside
// parallel callbacks. Float addition and multiplication are not
// associative, so a shared accumulator mutated from a sched.ForEach /
// ForEachGrain / Map callback (or a sched.Task Run function) folds in
// completion order and produces a different low-order result every
// run — precisely the kind of wobble the 21 byte-identical goldens
// exist to catch, except it only surfaces under multi-worker timing.
// The sanctioned idiom is per-index computation with a serial
// index-order fold: sched.SumOrdered, or sched.Map followed by a
// plain loop. Per-index writes (out[i] = v) are fine and are not
// flagged; integer accumulators are a lockshare concern, not a
// reproducibility-of-rounding one, and are ignored here.
package floatorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"sx4bench/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floatorder",
	Doc: "flag shared float accumulators (+=, *=, x = x + ...) mutated inside sched parallel callbacks; " +
		"reductions must use fixed-order folds (sched.SumOrdered or Map + serial loop) to keep goldens bit-identical",
	Run: run,
}

const schedPath = "sx4bench/internal/core/sched"

// parallelEntry names the sched functions whose callback arguments run
// concurrently.
var parallelEntry = map[string]bool{
	"ForEach": true, "ForEachGrain": true, "Map": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				var id *ast.Ident
				switch fun := n.Fun.(type) {
				case *ast.Ident:
					id = fun
				case *ast.SelectorExpr:
					id = fun.Sel
				}
				if id == nil {
					return true
				}
				fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != schedPath || !parallelEntry[fn.Name()] {
					return true
				}
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						checkLit(pass, lit, "sched."+fn.Name()+" callback")
					}
				}
			case *ast.CompositeLit:
				t := pass.TypesInfo.TypeOf(n)
				named, ok := t.(*types.Named)
				if !ok || named.Obj().Pkg() == nil ||
					named.Obj().Pkg().Path() != schedPath || named.Obj().Name() != "Task" {
					return true
				}
				for i, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Run" {
							if lit, ok := kv.Value.(*ast.FuncLit); ok {
								checkLit(pass, lit, "sched.Task Run function")
							}
						}
					} else if i == 1 {
						// Positional literal: Task{id, run}.
						if lit, ok := elt.(*ast.FuncLit); ok {
							checkLit(pass, lit, "sched.Task Run function")
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkLit scans one parallel callback for order-dependent float
// mutations of variables that outlive the callback.
func checkLit(pass *analysis.Pass, lit *ast.FuncLit, where string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					flagSharedFloat(pass, lit, lhs, n.Pos(), n.Tok.String(), where)
				}
			case token.ASSIGN:
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) && mentions(n.Rhs[i], lhs) {
						flagSharedFloat(pass, lit, lhs, n.Pos(), "self-referential =", where)
					}
				}
			}
		case *ast.IncDecStmt:
			flagSharedFloat(pass, lit, n.X, n.Pos(), n.Tok.String(), where)
		}
		return true
	})
}

// flagSharedFloat reports lhs if it is a float lvalue rooted at a
// variable declared outside the callback.
func flagSharedFloat(pass *analysis.Pass, lit *ast.FuncLit, lhs ast.Expr, pos token.Pos, op, where string) {
	t := pass.TypesInfo.TypeOf(lhs)
	if t == nil {
		return
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return
	}
	root := rootIdentObj(pass, lhs)
	if root == nil {
		return
	}
	if root.Pos() >= lit.Pos() && root.Pos() <= lit.End() {
		return // callback-local accumulator: folded before escaping
	}
	if pass.Waived(pos) {
		return
	}
	pass.Reportf(pos,
		"order-dependent float reduction: %q on %s inside a %s accumulates in goroutine completion order, and float ops are not associative; compute per-index values and fold serially (sched.SumOrdered or sched.Map + loop)",
		op, root.Name(), where)
}

// mentions reports whether sub (by expression string) occurs inside e
// — the `sum = sum + x` form of a compound assignment.
func mentions(e, sub ast.Expr) bool {
	want := types.ExprString(sub)
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if x, ok := n.(ast.Expr); ok && types.ExprString(x) == want {
			found = true
			return false
		}
		return true
	})
	return found
}

// rootIdentObj returns the object of the leftmost identifier of a
// selector/index/star chain.
func rootIdentObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}
