// Package analysis is a self-contained static-analysis framework
// mirroring the golang.org/x/tools/go/analysis API surface on the
// standard library alone (this repository builds offline, so the
// x/tools module is not available). It powers sx4lint, the vettool
// that promotes the repository's determinism, layering and
// golden-stability invariants from "caught by a golden diff after the
// fact" to "rejected at build time".
//
// The shape is the familiar one: an Analyzer owns a Run function over
// a Pass; a Pass exposes the parsed and type-checked package and
// collects Diagnostics. Packages load through `go list -export`, with
// imports resolved from compiler export data (see load.go), so every
// analyzer sees fully type-checked syntax. The analysistest
// subpackage runs analyzers over fixture trees with // want
// expectations, exactly like its x/tools namesake.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer's command-line and diagnostic identifier.
	Name string
	// Doc is the one-paragraph help text: the invariant enforced and
	// why it exists.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's parsed syntax (non-test files only: the
	// invariants sx4lint enforces are production-code invariants, and
	// tests legitimately construct concrete machines, wall clocks and
	// throwaway rand streams).
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// PathBase returns the last element of an import path.
func PathBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// IsPkgFunc reports whether obj is the package-level function
// pkgpath.name (methods have a receiver and never match).
func IsPkgFunc(obj types.Object, pkgpath string) (string, bool) {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgpath {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	return fn.Name(), true
}
