// Package analysis is a self-contained static-analysis framework
// mirroring the golang.org/x/tools/go/analysis API surface on the
// standard library alone (this repository builds offline, so the
// x/tools module is not available). It powers sx4lint, the vettool
// that promotes the repository's determinism, layering and
// golden-stability invariants from "caught by a golden diff after the
// fact" to "rejected at build time".
//
// The shape is the familiar one: an Analyzer owns a Run function over
// a Pass; a Pass exposes the parsed and type-checked package and
// collects Diagnostics. Packages load through `go list -export`, with
// imports resolved from compiler export data (see load.go), so every
// analyzer sees fully type-checked syntax. The analysistest
// subpackage runs analyzers over fixture trees with // want
// expectations, exactly like its x/tools namesake.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer's command-line and diagnostic identifier.
	Name string
	// Doc is the one-paragraph help text: the invariant enforced and
	// why it exists.
	Doc string
	// FactTypes declares the concrete fact types the analyzer may
	// export or import (each a pointer to a gob-serializable struct,
	// e.g. (*Nondeterministic)(nil)). Analyzers with no fact types are
	// purely per-package.
	FactTypes []Fact
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's parsed syntax (non-test files only: the
	// invariants sx4lint enforces are production-code invariants, and
	// tests legitimately construct concrete machines, wall clocks and
	// throwaway rand streams).
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	facts       *FactStore
	ignores     map[lineKey]bool
	diagnostics []Diagnostic
}

// checkFactType panics unless the analyzer declared fact's concrete
// type in FactTypes — an undeclared fact is a programming error in the
// analyzer, not a property of the analyzed code.
func (p *Pass) checkFactType(fact Fact) {
	want := reflect.TypeOf(fact)
	for _, f := range p.Analyzer.FactTypes {
		if reflect.TypeOf(f) == want {
			return
		}
	}
	panic(fmt.Sprintf("analysis: analyzer %q uses undeclared fact type %T", p.Analyzer.Name, fact))
}

// ExportObjectFact attaches fact to a package-level object, making it
// visible to this analyzer's passes over every package that imports
// obj's package (in-process via the shared fact store, across vet
// invocations via the serialized facts files). Objects without a
// stable path — locals, fields — silently export nothing: an importer
// could never name them, so no cross-package flow is lost.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.checkFactType(fact)
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return
	}
	if path, ok := ObjectPath(obj); ok {
		p.facts.put(p.Analyzer.Name, obj.Pkg().Path(), path, fact)
	}
}

// ImportObjectFact copies the fact of fact's concrete type attached to
// obj into fact, reporting whether one was found. obj is typically an
// object resolved from this package's view of an import — the (package
// path, object path) key bridges the identity gap between that view
// and the source-checked package the fact was exported from.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	p.checkFactType(fact)
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	path, ok := ObjectPath(obj)
	if !ok {
		return false
	}
	got, ok := p.facts.get(p.Analyzer.Name, obj.Pkg().Path(), path, factTypeName(fact))
	if !ok {
		return false
	}
	rv := reflect.ValueOf(fact)
	gv := reflect.ValueOf(got)
	if rv.Kind() != reflect.Pointer || gv.Kind() != reflect.Pointer || rv.Type() != gv.Type() {
		return false
	}
	rv.Elem().Set(gv.Elem())
	return true
}

// Waived reports whether an //sx4lint:ignore waiver for this analyzer
// covers pos (on its line or the line above). Run uses the same index
// to suppress diagnostics; fact-producing analyzers also consult it to
// stop propagation at a reviewed site — a waived call is an audited
// assertion that the callee's nondeterminism does not reach this
// caller's output, so the caller must not inherit the taint.
func (p *Pass) Waived(pos token.Pos) bool {
	if p.ignores == nil {
		return false
	}
	at := p.Fset.Position(pos)
	return p.ignores[lineKey{at.Filename, at.Line, p.Analyzer.Name}] ||
		p.ignores[lineKey{at.Filename, at.Line - 1, p.Analyzer.Name}]
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// PathBase returns the last element of an import path.
func PathBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// IsPkgFunc reports whether obj is the package-level function
// pkgpath.name (methods have a receiver and never match).
func IsPkgFunc(obj types.Object, pkgpath string) (string, bool) {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgpath {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	return fn.Name(), true
}
