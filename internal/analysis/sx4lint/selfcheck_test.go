package sx4lint_test

import (
	"testing"

	"sx4bench/internal/analysis"
	"sx4bench/internal/analysis/sx4lint"
)

// TestRepositoryIsClean runs the full analyzer suite over the module:
// the invariant "sx4lint ./... reports nothing" is itself a test, so
// a violation fails `go test ./...` even before make lint or CI run
// the binary.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module; skipped in -short")
	}
	pkgs, err := analysis.Load("../../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.Run(pkgs, sx4lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
