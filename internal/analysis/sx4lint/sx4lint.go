// Package sx4lint assembles the repository's analyzer suite: the one
// list cmd/sx4lint, the vettool mode, and the self-check test all
// share.
package sx4lint

import (
	"sx4bench/internal/analysis"
	"sx4bench/internal/analysis/detflow"
	"sx4bench/internal/analysis/floatorder"
	"sx4bench/internal/analysis/goldenfmt"
	"sx4bench/internal/analysis/layering"
	"sx4bench/internal/analysis/lockshare"
	"sx4bench/internal/analysis/maporder"
	"sx4bench/internal/analysis/noclock"
	"sx4bench/internal/analysis/seededrand"
)

// Analyzers returns the full suite in stable order: the five
// per-package syntactic checks from sx4lint v1, then the three
// interprocedural v2 analyzers (detflow is the only fact producer).
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		noclock.Analyzer,
		seededrand.Analyzer,
		layering.Analyzer,
		maporder.Analyzer,
		goldenfmt.Analyzer,
		detflow.Analyzer,
		lockshare.Analyzer,
		floatorder.Analyzer,
	}
}
