// Package sx4lint assembles the repository's analyzer suite: the one
// list cmd/sx4lint, the vettool mode, and the self-check test all
// share.
package sx4lint

import (
	"sx4bench/internal/analysis"
	"sx4bench/internal/analysis/goldenfmt"
	"sx4bench/internal/analysis/layering"
	"sx4bench/internal/analysis/maporder"
	"sx4bench/internal/analysis/noclock"
	"sx4bench/internal/analysis/seededrand"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		noclock.Analyzer,
		seededrand.Analyzer,
		layering.Analyzer,
		maporder.Analyzer,
		goldenfmt.Analyzer,
	}
}
