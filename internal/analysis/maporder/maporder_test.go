package maporder_test

import (
	"testing"

	"sx4bench/internal/analysis/analysistest"
	"sx4bench/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer,
		"sx4bench/internal/fakereport",
	)
}
