// Package fakereport is a maporder fixture: map iteration feeding
// ordered sinks must go through sorted keys.
package fakereport

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func BadPrint(w io.Writer, m map[string]float64) {
	for k, v := range m { // want `map iteration writes output via fmt\.Fprintf`
		fmt.Fprintf(w, "%s=%.2f\n", k, v)
	}
}

func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration appends to out in randomized order with no later sort`
		out = append(out, k)
	}
	return out
}

func BadBuilder(m map[int]int) string {
	var b strings.Builder
	for k := range m { // want `map iteration calls WriteString inside the loop`
		b.WriteString(fmt.Sprint(k))
	}
	return b.String()
}

// The sanctioned idiom: collect, sort, then range the slice.
func GoodSorted(w io.Writer, m map[string]float64) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%.2f\n", k, m[k])
	}
}

// Order-insensitive reductions are fine.
func GoodSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// Loop-local appends do not outlive an iteration.
func GoodLocal(w io.Writer, m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		n += len(doubled)
	}
	return n
}
