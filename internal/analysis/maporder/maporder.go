// Package maporder flags map iteration that can leak Go's randomized
// map order into golden-checked output.
//
// A `for range` over a map whose body writes to an io.Writer, feeds a
// hash/fingerprint, or appends to a slice that outlives the loop
// emits its elements in a different order every run — the classic way
// a byte-exact golden goes flaky. The sanctioned idiom is to collect
// the keys, sort them, and range over the sorted slice; a key-collect
// loop is therefore exempt when the collected slice is passed to a
// sort call later in the same function. Order-insensitive bodies
// (sums, counts, deletes) are not flagged. False positives carry an
// explicit waiver: //sx4lint:ignore maporder <reason>.
package maporder

import (
	"go/ast"
	"go/types"

	"sx4bench/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose body writes output, fingerprints, or appends to an outer slice without a later sort",
	Run:  run,
}

var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

var sortFuncs = map[string]bool{
	// package sort
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	// package slices
	"SortFunc": true, "SortStableFunc": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkFunc examines one function body: every map range inside it is
// checked against the sort calls inside it.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// sortedAfter[obj] holds positions of sort calls whose argument
	// resolves to obj.
	sortedAfter := map[types.Object][]ast.Node{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortFuncs[sel.Sel.Name] {
			return true
		}
		if name, ok := funcPkg(pass, sel.Sel); !ok || (name != "sort" && name != "slices") {
			return true
		}
		if obj := rootObj(pass, call.Args[0]); obj != nil {
			sortedAfter[obj] = append(sortedAfter[obj], call)
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkRange(pass, rng, sortedAfter)
		return true
	})
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt, sortedAfter map[types.Object][]ast.Node) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" && len(call.Args) > 0 {
				if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
					checkAppend(pass, rng, call, sortedAfter)
				}
			}
		case *ast.SelectorExpr:
			if pkg, ok := funcPkg(pass, fun.Sel); ok {
				switch {
				case pkg == "fmt" && (len(fun.Sel.Name) > 5 && fun.Sel.Name[:5] == "Fprin" || len(fun.Sel.Name) > 4 && fun.Sel.Name[:4] == "Prin"):
					pass.Reportf(rng.For,
						"map iteration writes output via fmt.%s in randomized order; range over sorted keys instead", fun.Sel.Name)
					return false
				case pkg == "io" && fun.Sel.Name == "WriteString":
					pass.Reportf(rng.For,
						"map iteration writes output via io.WriteString in randomized order; range over sorted keys instead")
					return false
				}
			} else if writeMethods[fun.Sel.Name] && pass.TypesInfo.Selections[fun] != nil {
				pass.Reportf(rng.For,
					"map iteration calls %s inside the loop: writers and fingerprints see randomized map order; range over sorted keys instead", fun.Sel.Name)
				return false
			}
		}
		return true
	})
}

// checkAppend flags `out = append(out, ...)` inside a map range when
// out is declared outside the loop and never sorted afterwards.
func checkAppend(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr, sortedAfter map[types.Object][]ast.Node) {
	obj := rootObj(pass, call.Args[0])
	if obj == nil {
		return
	}
	// Declared inside the range body: loop-local, orderless use.
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return
	}
	for _, s := range sortedAfter[obj] {
		if s.Pos() > rng.End() {
			return // collect-then-sort idiom
		}
	}
	pass.Reportf(rng.For,
		"map iteration appends to %s in randomized order with no later sort; sort the keys (or the result) before use", obj.Name())
}

// funcPkg resolves a selector identifier to the package path base of
// the package-level function it names.
func funcPkg(pass *analysis.Pass, sel *ast.Ident) (string, bool) {
	obj, ok := pass.TypesInfo.Uses[sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return "", false
	}
	if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	return analysis.PathBase(obj.Pkg().Path()), true
}

// rootObj unwraps conversions/single-arg calls and returns the object
// of the underlying identifier, if any.
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[v]
		case *ast.CallExpr:
			if len(v.Args) != 1 {
				return nil
			}
			e = v.Args[0]
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		default:
			return nil
		}
	}
}
