// Package goldenfmt polices float formatting in the golden-producing
// packages.
//
// The %v and %g verbs render a float64 in "shortest round-trip" form
// — an implementation detail of package fmt, not a format the
// repository chose. Every number that reaches a byte-exact golden
// artifact (Tables 1-7, Figures 5-8, the anchors) must instead go
// through an explicit formatter: a fixed-precision %f verb, or the
// canonical helpers core.Float / core.Fixed. The analyzer flags %v,
// %g and %G applied to float arguments in fmt format calls inside the
// golden-producing packages (core, ncar, check, the facade and the
// cmds).
package goldenfmt

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"sx4bench/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "goldenfmt",
	Doc:  "forbid %v/%g on floats in golden-producing packages; use fixed-width verbs or core.Float/core.Fixed",
	Run:  run,
}

func inScope(path string) bool {
	switch {
	case path == "sx4bench":
		return true
	case strings.HasPrefix(path, "sx4bench/cmd/"):
		return true
	case strings.HasPrefix(path, "sx4bench/internal/core"),
		strings.HasPrefix(path, "sx4bench/internal/ncar"),
		strings.HasPrefix(path, "sx4bench/internal/check"):
		return true
	}
	return false
}

// formatArg gives the index of the format-string argument of the
// fmt printf-style functions.
var formatArg = map[string]int{
	"Sprintf": 0, "Printf": 0, "Errorf": 0,
	"Fprintf": 1, "Appendf": 1,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name, ok := analysis.IsPkgFunc(pass.TypesInfo.Uses[sel.Sel], "fmt")
			if !ok {
				return true
			}
			fi, ok := formatArg[name]
			if !ok || len(call.Args) <= fi {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Args[fi]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			checkFormat(pass, call, constant.StringVal(tv.Value), call.Args[fi+1:])
			return true
		})
	}
	return nil
}

// checkFormat walks the verbs of format, pairing each with its
// argument, and reports %v/%g/%G applied to a float.
func checkFormat(pass *analysis.Pass, call *ast.CallExpr, format string, args []ast.Expr) {
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			return
		}
		if format[i] == '%' {
			continue
		}
		// Explicit argument indexes (%[1]v) are rare enough that the
		// analyzer declines the whole string rather than mis-pairing.
		verb, stars, hasPrec, width := parseVerb(format[i:])
		if verb == 0 || strings.ContainsRune(width, '[') {
			return
		}
		arg += stars
		// %v is always implicit; %g with an explicit precision
		// (%.3g) is a deliberate fixed form and is allowed.
		if verb == 'v' || (verb == 'g' || verb == 'G') && !hasPrec {
			if arg < len(args) && isFloat(pass.TypesInfo.TypeOf(args[arg])) {
				pass.Reportf(call.Pos(),
					"%%%c formats a float with fmt's implicit shortest form; golden-producing code must use a fixed-width verb or core.Float/core.Fixed", verb)
			}
		}
		arg++
		i += len(width) - 1 // resume at the verb; the loop steps past it
	}
}

// parseVerb consumes flags, width and precision, returning the verb
// rune, the number of '*' arguments consumed, whether an explicit
// precision was given, and the directive text up to and including the
// verb.
func parseVerb(s string) (verb rune, stars int, hasPrec bool, directive string) {
	i := 0
	for i < len(s) && strings.ContainsRune("#0- +'", rune(s[i])) {
		i++
	}
	digits := func() {
		for i < len(s) && (s[i] >= '0' && s[i] <= '9') {
			i++
		}
	}
	if i < len(s) && s[i] == '*' {
		stars++
		i++
	} else {
		digits()
	}
	if i < len(s) && s[i] == '.' {
		hasPrec = true
		i++
		if i < len(s) && s[i] == '*' {
			stars++
			i++
		} else {
			digits()
		}
	}
	if i >= len(s) {
		return 0, stars, hasPrec, s[:i]
	}
	return rune(s[i]), stars, hasPrec, s[:i+1]
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
