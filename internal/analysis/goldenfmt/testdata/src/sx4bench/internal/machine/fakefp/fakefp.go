// Package fakefp is outside goldenfmt's scope: fingerprint hashing in
// the model layer may use %v (the hash only needs injectivity, not a
// canonical rendering).
package fakefp

import (
	"fmt"
	"hash/fnv"
)

func Fingerprint(clockNS float64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "cfg|%v", clockNS)
	return h.Sum64()
}
