// Package fakefmt is a goldenfmt fixture inside the golden-producing
// scope (sx4bench/internal/core/...).
package fakefmt

import (
	"fmt"
	"io"
)

func Render(w io.Writer, x float64, n int) {
	fmt.Fprintf(w, "%v\n", x)      // want `%v formats a float with fmt's implicit shortest form`
	fmt.Fprintf(w, "%g\n", x)      // want `%g formats a float`
	fmt.Fprintf(w, "%9.3g\n", x)   // explicit precision: deliberate fixed form
	fmt.Fprintf(w, "%.2f\n", x)    // the canonical fixed-width verb
	fmt.Fprintf(w, "%v\n", n)      // ints have one canonical rendering
	_ = fmt.Sprintf("%d %v", n, x) // want `%v formats a float`
	_ = fmt.Sprintf("%*v", n, x)   // want `%v formats a float`
}
