package goldenfmt_test

import (
	"testing"

	"sx4bench/internal/analysis/analysistest"
	"sx4bench/internal/analysis/goldenfmt"
)

func TestGoldenFmt(t *testing.T) {
	analysistest.Run(t, "testdata", goldenfmt.Analyzer,
		"sx4bench/internal/core/fakefmt",
		"sx4bench/internal/machine/fakefp",
	)
}
