package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"
)

// VetConfig is the per-package configuration file the go command
// hands a -vettool (the x/tools unitchecker protocol): source files,
// and the import→export-data maps needed to type-check them.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetCfg executes the analyzers on the single package described by
// the .cfg file, in the way `go vet -vettool=sx4lint` drives it.
//
// Facts flow through the unitchecker protocol for real: the facts
// files of every dependency (cfg.PackageVetx) are merged into the
// store before analysis, and the facts exported while analyzing this
// package are serialized to cfg.VetxOutput — validated by a full
// write → reread → re-encode round-trip, since a corrupt facts file
// would silently blind every downstream package. Every exit path that
// succeeds writes a decodable facts file, including the skipped ones
// (test package variants, standard-library dependencies): the go
// command requires the file to exist, and downstream merges must be
// able to read it.
func RunVetCfg(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, fmt.Errorf("sx4lint: reading vet config: %v", err)
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("sx4lint: parsing vet config %s: %v", cfgPath, err)
	}
	RegisterFactTypes(analyzers)
	store := NewFactStore()
	depPaths := make([]string, 0, len(cfg.PackageVetx))
	for dep := range cfg.PackageVetx {
		depPaths = append(depPaths, dep)
	}
	sort.Strings(depPaths)
	for _, dep := range depPaths {
		if err := store.ReadFile(cfg.PackageVetx[dep]); err != nil {
			return nil, fmt.Errorf("sx4lint: facts of dependency %s: %v", dep, err)
		}
	}
	writeFacts := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return store.WriteFileValidated(cfg.VetxOutput)
	}

	// Test package variants ("pkg [pkg.test]", "pkg.test") and
	// anything outside the module are out of sx4lint's scope: the
	// invariants are production-code invariants, and every
	// nondeterminism source outside the module is matched
	// intrinsically (time.Now, math/rand, ...) rather than by taint
	// through its internals — analyzing, say, math/rand from source
	// would tag its own seeded constructors nondeterministic.
	// (cfg.Standard cannot carry this decision: it lists a package's
	// standard-library *imports*, not the package itself.)
	if strings.ContainsAny(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") ||
		(cfg.ImportPath != "sx4bench" && !strings.HasPrefix(cfg.ImportPath, "sx4bench/")) {
		return nil, writeFacts()
	}

	run := analyzers
	if cfg.VetxOnly {
		// A dependency analyzed only for its facts: run just the
		// fact-producing analyzers and report nothing — its own
		// diagnostics belong to the vet invocation rooted at it.
		run = FactProducers(analyzers)
		if len(run) == 0 {
			return nil, writeFacts()
		}
	}

	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil, writeFacts()
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, vetExports(cfg))
	pkg, err := typecheck(fset, imp, cfg.ImportPath, cfg.Dir, files, !cfg.SucceedOnTypecheckFailure)
	if err != nil {
		return nil, err
	}
	diags, err := RunFacts([]*Package{pkg}, run, store)
	if err != nil {
		return nil, err
	}
	if cfg.VetxOnly {
		diags = nil
	}
	return diags, writeFacts()
}

// vetExports flattens the config's ImportMap/PackageFile pair into
// one source-import-path → export-file map.
func vetExports(cfg VetConfig) map[string]string {
	exports := map[string]string{}
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for src, canonical := range cfg.ImportMap {
		if f, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = f
		}
	}
	return exports
}
