package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"strings"
)

// VetConfig is the per-package configuration file the go command
// hands a -vettool (the x/tools unitchecker protocol): source files,
// and the import→export-data maps needed to type-check them.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetCfg executes the analyzers on the single package described by
// the .cfg file, in the way `go vet -vettool=sx4lint` drives it. The
// (empty) facts file the go command expects is always written; test
// package variants are skipped, since sx4lint's invariants exempt
// test code.
func RunVetCfg(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, fmt.Errorf("sx4lint: reading vet config: %v", err)
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("sx4lint: parsing vet config %s: %v", cfgPath, err)
	}
	// The go command requires the facts file to exist after a clean
	// exit; sx4lint's analyzers neither produce nor consume facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly || strings.ContainsAny(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") {
		return nil, nil
	}
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil, nil
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, vetExports(cfg))
	pkg, err := typecheck(fset, imp, cfg.ImportPath, cfg.Dir, files, !cfg.SucceedOnTypecheckFailure)
	if err != nil {
		return nil, err
	}
	return Run([]*Package{pkg}, analyzers)
}

// vetExports flattens the config's ImportMap/PackageFile pair into
// one source-import-path → export-file map.
func vetExports(cfg VetConfig) map[string]string {
	exports := map[string]string{}
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for src, canonical := range cfg.ImportMap {
		if f, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = f
		}
	}
	return exports
}
