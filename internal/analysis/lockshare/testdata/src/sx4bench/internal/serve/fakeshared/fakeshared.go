// Package fakeshared exercises every lockshare rule: it lives under
// the sx4bench/internal/serve prefix, so it is in scope.
package fakeshared

import (
	"errors"
	"sync"
)

var errBoom = errors.New("boom")

// Counter is self-guarded: it carries its own mutex, so sibling
// fields are shared state.
type Counter struct {
	mu sync.Mutex
	n  int
	m  map[string]int
}

// NewCounter writes fields before the value is shared: constructor
// writes are exempt.
func NewCounter() *Counter {
	c := &Counter{}
	c.n = 1
	c.m = map[string]int{}
	return c
}

// Inc writes under the guard.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Reset writes a guarded sibling field with no lock in sight.
func (c *Counter) Reset() {
	c.n = 0 // want `write to Counter\.n without locking c\.mu first`
}

// resetLocked documents via its name that the caller holds the lock.
func (c *Counter) resetLocked() {
	c.n = 0
}

// Put writes the map field under the guard.
func (c *Counter) Put(k string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = v
}

// BadPut writes through the map field unguarded.
func (c *Counter) BadPut(k string, v int) {
	c.m[k] = v // want `write to Counter\.m without locking c\.mu first`
}

// Value copies the whole counter — lock included — on every call.
func (c Counter) Value() int { // want `value receiver of lock-containing type Counter`
	return c.n
}

// Sum takes the counter by value, copying the lock.
func Sum(c Counter) int { // want `parameter of lock-containing type Counter is passed by value`
	return c.n
}

// Snapshot copies the counter out from under its own mutex.
func Snapshot(c *Counter) int {
	v := *c // want `assignment copies lock-containing value of type Counter`
	return v.n
}

// Each copies every element — and its lock — into the range variable.
func Each(cs []Counter) int {
	t := 0
	for _, c := range cs { // want `range clause copies lock-containing elements of type Counter`
		t += c.n
	}
	return t
}

// Risky leaves the mutex held on the error path.
func (c *Counter) Risky(fail bool) error {
	c.mu.Lock()
	if fail {
		return errBoom // want `return with c\.mu still held`
	}
	c.mu.Unlock()
	return nil
}

// Safe releases on every path without defer: clean.
func (c *Counter) Safe(fail bool) error {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		return errBoom
	}
	c.mu.Unlock()
	return nil
}

// Spawner launches goroutines that share state with their parent.
type Spawner struct {
	mu   sync.Mutex
	hits map[string]int
}

// Launch shows the two unguarded captured writes: a captured integer
// and a captured map field.
func (s *Spawner) Launch(total *int) {
	go func() {
		*total = *total + 1 // want `goroutine writes captured variable total without locking`
	}()
	go func() {
		s.hits["x"]++ // want `goroutine writes captured map s without locking` `write to Spawner\.hits without locking s\.mu first`
	}()
}

// LaunchGuarded locks inside the goroutine before writing: clean.
func (s *Spawner) LaunchGuarded() {
	go func() {
		s.mu.Lock()
		s.hits["x"]++
		s.mu.Unlock()
	}()
}

// Fill uses the sched worker idiom — each goroutine owns one slice
// element — which is the sanctioned unguarded write.
func Fill(results []float64) {
	for i := range results {
		go func(i int) {
			results[i] = 1.5
		}(i)
	}
}

// Package-level state guarded by a package-level mutex.
var (
	regMu sync.Mutex
	reg   = map[string]int{}
)

// Register writes the global under the package mutex.
func Register(k string) {
	regMu.Lock()
	defer regMu.Unlock()
	reg[k] = 1
}

// BadRegister skips the package mutex.
func BadRegister(k string) {
	reg[k] = 1 // want `write to package-level reg without holding the package mutex`
}
