// Package lockshare checks the shared-state discipline of the
// concurrent serving stack: internal/serve (daemon, response cache,
// single-flight), internal/fleet (multi-node Monte Carlo) and
// internal/target (the sharded memo and fingerprint caches). Those
// packages run real goroutines against shared structs, where the
// 64-shard memo generation stamps and the content-addressed response
// cache are only sound if every shared write happens under the guard
// that readers take.
//
// Four rules, all lexical and per-function (a lint, not a prover —
// borderline cases carry //sx4lint:ignore lockshare <reason>):
//
//  1. Lock-containing values must not be copied: value receivers,
//     value parameters, plain assignments and range-clause copies of
//     a type containing sync.Mutex/RWMutex each silently fork the
//     lock from the state it guards.
//  2. A function that calls X.Lock() without a deferred unlock must
//     not return before the matching X.Unlock() — the early-error
//     path that leaves the daemon wedged.
//  3. In a struct that carries its own mutex field, sibling fields
//     are written only after the mutex is locked in the same
//     function (writes in constructors, in "...Locked" helper methods
//     documented to run under the caller's lock, and to sync/atomic
//     fields are exempt). The same applies to package-level variables
//     in packages that guard them with a package-level mutex.
//  4. A `go func() { ... }` literal must not write variables captured
//     from the enclosing function without locking first; per-index
//     writes to distinct slice elements (the sched worker idiom) are
//     the one sanctioned exception.
package lockshare

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sx4bench/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockshare",
	Doc: "shared-state checks for serve/fleet/target: no copied locks, no return while locked, " +
		"mutex-sibling fields and package-level state written only under the guard, no unguarded captured writes in goroutines",
	Run: run,
}

// scopePrefixes are the goroutine-running packages the rules apply to.
var scopePrefixes = []string{
	"sx4bench/internal/serve",
	"sx4bench/internal/fleet",
	"sx4bench/internal/target",
}

func inScope(pkgPath string) bool {
	for _, p := range scopePrefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	pkgMutexes := packageMutexes(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			checkCopies(pass, decl)
			checkLockRelease(pass, decl)
			checkGuardedWrites(pass, decl, pkgMutexes)
			checkGoroutineWrites(pass, decl)
		}
	}
	return nil
}

// ---- rule 1: copied locks ----

func checkCopies(pass *analysis.Pass, decl *ast.FuncDecl) {
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		recv := decl.Recv.List[0]
		if t := pass.TypesInfo.TypeOf(recv.Type); t != nil && containsLock(t) {
			pass.Reportf(recv.Type.Pos(),
				"method %s has a value receiver of lock-containing type %s: each call copies the lock away from the state it guards; use a pointer receiver",
				decl.Name.Name, types.TypeString(t, types.RelativeTo(pass.Pkg)))
		}
	}
	for _, field := range decl.Type.Params.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t != nil && containsLock(t) {
			pass.Reportf(field.Type.Pos(),
				"parameter of lock-containing type %s is passed by value, copying the lock; pass a pointer",
				types.TypeString(t, types.RelativeTo(pass.Pkg)))
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if !copiesValue(rhs) {
					continue
				}
				if t := pass.TypesInfo.TypeOf(rhs); t != nil && containsLock(t) {
					pass.Reportf(n.Pos(), "assignment copies lock-containing value of type %s; keep a pointer instead",
						types.TypeString(t, types.RelativeTo(pass.Pkg)))
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			if t := pass.TypesInfo.TypeOf(n.Value); t != nil && containsLock(t) {
				pass.Reportf(n.Value.Pos(),
					"range clause copies lock-containing elements of type %s; range over indices and take pointers",
					types.TypeString(t, types.RelativeTo(pass.Pkg)))
			}
		}
		return true
	})
}

// copiesValue reports whether an expression denotes an existing value
// being copied (as opposed to a fresh composite literal, address, or
// call result).
func copiesValue(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copiesValue(v.X)
	}
	return false
}

// containsLock reports whether t (or any struct field of it,
// transitively, not following pointers) is a sync.Mutex or RWMutex.
func containsLock(t types.Type) bool {
	return containsLockRec(t, map[types.Type]bool{})
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}

// ---- rule 2: return while locked ----

func checkLockRelease(pass *analysis.Pass, decl *ast.FuncDecl) {
	type site struct {
		expr string // ExprString of the locked value, e.g. "s.mu"
		read bool   // RLock vs Lock
		pos  token.Pos
	}
	var locks []site
	deferred := map[string]bool{} // "s.mu"+kind with a deferred unlock
	unlocks := map[string][]token.Pos{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if x, name, ok := mutexCall(pass, n.Call); ok && (name == "Unlock" || name == "RUnlock") {
				deferred[types.ExprString(x)+"/"+name] = true
			}
		case *ast.CallExpr:
			if x, name, ok := mutexCall(pass, n); ok {
				key := types.ExprString(x)
				switch name {
				case "Lock":
					locks = append(locks, site{key, false, n.Pos()})
				case "RLock":
					locks = append(locks, site{key, true, n.Pos()})
				case "Unlock":
					unlocks[key+"/Unlock"] = append(unlocks[key+"/Unlock"], n.Pos())
				case "RUnlock":
					unlocks[key+"/RUnlock"] = append(unlocks[key+"/RUnlock"], n.Pos())
				}
			}
		}
		return true
	})
	if len(locks) == 0 {
		return
	}
	var returns []token.Pos
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			// A literal's returns exit the literal, not this function.
			_ = fl
			return false
		}
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, r.Pos())
		}
		return true
	})
	for _, l := range locks {
		kind := "Unlock"
		if l.read {
			kind = "RUnlock"
		}
		if deferred[l.expr+"/"+kind] {
			continue
		}
		// The lock is released manually: every return after the Lock
		// must be preceded by a matching unlock.
		for _, r := range returns {
			if r <= l.pos {
				continue
			}
			released := false
			for _, u := range unlocks[l.expr+"/"+kind] {
				if u > l.pos && u < r {
					released = true
					break
				}
			}
			if !released {
				pass.Reportf(r, "return with %s still held: %s.%s at %s has no deferred unlock and no %s before this return",
					l.expr, l.expr, map[bool]string{false: "Lock", true: "RLock"}[l.read],
					pass.Fset.Position(l.pos), kind)
			}
		}
	}
}

// mutexCall matches a call expr of the form X.<method>() where X is a
// sync.Mutex/RWMutex (possibly a field), returning X and the method.
func mutexCall(pass *analysis.Pass, call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return sel.X, sel.Sel.Name, true
	}
	return nil, "", false
}

// ---- rule 3: writes under the guard ----

// packageMutexes returns the package-level sync.Mutex/RWMutex
// variables of this package.
func packageMutexes(pass *analysis.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if v, ok := scope.Lookup(name).(*types.Var); ok && containsLock(v.Type()) {
			out[v] = true
		}
	}
	return out
}

func checkGuardedWrites(pass *analysis.Pass, decl *ast.FuncDecl, pkgMutexes map[types.Object]bool) {
	if strings.HasSuffix(decl.Name.Name, "Locked") || decl.Name.Name == "init" {
		return
	}
	body := decl.Body

	// lockedBy[obj] holds positions of X.Lock()/X.RLock() calls whose
	// root identifier resolves to obj.
	lockedBy := map[types.Object][]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if x, name, ok := mutexCall(pass, call); ok && (name == "Lock" || name == "RLock") {
			if obj := rootIdentObj(pass, x); obj != nil {
				lockedBy[obj] = append(lockedBy[obj], call.Pos())
			}
		}
		return true
	})
	heldBefore := func(obj types.Object, pos token.Pos) bool {
		for _, l := range lockedBy[obj] {
			if l < pos {
				return true
			}
		}
		return false
	}
	anyPkgMutexBefore := func(pos token.Pos) bool {
		for mu := range pkgMutexes {
			if heldBefore(mu, pos) {
				return true
			}
		}
		return false
	}

	checkTarget := func(lhs ast.Expr, pos token.Pos) {
		// Unwrap index expressions: s.m[k] = v writes through field m.
		for {
			idx, ok := lhs.(*ast.IndexExpr)
			if !ok {
				break
			}
			lhs = idx.X
		}
		switch tgt := lhs.(type) {
		case *ast.SelectorExpr:
			field, ok := pass.TypesInfo.Uses[tgt.Sel].(*types.Var)
			if !ok || !field.IsField() {
				return
			}
			base := pass.TypesInfo.TypeOf(tgt.X)
			if base == nil {
				return
			}
			if p, ok := base.(*types.Pointer); ok {
				base = p.Elem()
			}
			named, ok := base.(*types.Named)
			if !ok || named.Obj().Pkg() != pass.Pkg {
				return
			}
			guard := structGuard(named)
			if guard == "" || field.Name() == guard {
				return
			}
			if isAtomicType(field.Type()) || containsLock(field.Type()) {
				return
			}
			root := rootIdentObj(pass, tgt.X)
			if root == nil {
				return
			}
			// Freshly constructed in this function: not yet shared.
			if root.Pos() >= body.Pos() && root.Pos() <= body.End() {
				return
			}
			if heldBefore(root, pos) || pass.Waived(pos) {
				return
			}
			pass.Reportf(pos,
				"write to %s.%s without locking %s.%s first: %s carries its own mutex, so sibling fields are shared state; lock, or rename the helper with a Locked suffix",
				named.Obj().Name(), field.Name(), rootName(tgt.X), guard, named.Obj().Name())
		case *ast.Ident:
			v, ok := pass.TypesInfo.Uses[tgt].(*types.Var)
			if !ok || v.Pkg() != pass.Pkg || v.Parent() != pass.Pkg.Scope() {
				return
			}
			if len(pkgMutexes) == 0 || pkgMutexes[v] || isAtomicType(v.Type()) || containsLock(v.Type()) {
				return
			}
			if anyPkgMutexBefore(pos) || pass.Waived(pos) {
				return
			}
			pass.Reportf(pos,
				"write to package-level %s without holding the package mutex: this package guards its globals with a package-level lock, so every write needs it",
				v.Name())
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkTarget(lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			checkTarget(n.X, n.Pos())
		}
		return true
	})
}

// structGuard returns the name of named's direct sync.Mutex/RWMutex
// field, or "" if it has none (struct not self-guarded).
func structGuard(named *types.Named) string {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if n, ok := f.Type().(*types.Named); ok {
			obj := n.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
				return f.Name()
			}
		}
	}
	return ""
}

func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

// ---- rule 4: unguarded captured writes in goroutines ----

func checkGoroutineWrites(pass *analysis.Pass, decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		var lockPositions []token.Pos
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if _, name, ok := mutexCall(pass, call); ok && (name == "Lock" || name == "RLock") {
					lockPositions = append(lockPositions, call.Pos())
				}
			}
			return true
		})
		lockedBefore := func(pos token.Pos) bool {
			for _, l := range lockPositions {
				if l < pos {
					return true
				}
			}
			return false
		}
		checkWrite := func(lhs ast.Expr, pos token.Pos) {
			// errs[i] = ... with a slice: the sched per-index idiom,
			// each goroutine owns a distinct element.
			if idx, ok := lhs.(*ast.IndexExpr); ok {
				if t := pass.TypesInfo.TypeOf(idx.X); t != nil {
					if _, isSlice := t.Underlying().(*types.Slice); isSlice {
						return
					}
					if _, isMap := t.Underlying().(*types.Map); isMap {
						root := rootIdentObj(pass, idx.X)
						if root != nil && capturedFrom(root, lit) && !lockedBefore(pos) && !pass.Waived(pos) {
							pass.Reportf(pos,
								"goroutine writes captured map %s without locking: concurrent map writes crash, and even serialized ones race with readers",
								rootName(idx.X))
						}
						return
					}
				}
				lhs = idx.X
			}
			root := rootIdentObj(pass, lhs)
			if root == nil || !capturedFrom(root, lit) {
				return
			}
			if lockedBefore(pos) || pass.Waived(pos) {
				return
			}
			pass.Reportf(pos,
				"goroutine writes captured variable %s without locking: the enclosing function (and sibling goroutines) race on it",
				root.Name())
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.AssignStmt:
				if m.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range m.Lhs {
					checkWrite(lhs, m.Pos())
				}
			case *ast.IncDecStmt:
				checkWrite(m.X, m.Pos())
			}
			return true
		})
		return true
	})
}

// capturedFrom reports whether obj is declared outside the literal —
// a free variable the goroutine shares with its parent.
func capturedFrom(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// rootIdentObj returns the object of the leftmost identifier of a
// selector/index/paren chain ("s" in s.mu, s.m[k]).
func rootIdentObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func rootName(e ast.Expr) string {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v.Name
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return "it"
		}
	}
}
