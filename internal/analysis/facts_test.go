package analysis

import (
	"bytes"
	"encoding/gob"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

type testFact struct{ Note string }

func (*testFact) AFact() {}

func init() { gob.Register(&testFact{}) }

func TestObjectPath(t *testing.T) {
	pkg, err := LoadFixture(filepath.Join("detflow", "testdata", "src", "sx4bench", "internal", "fakeleaf"),
		"sx4bench/internal/fakeleaf")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	scope := pkg.Types.Scope()

	cases := []struct {
		obj  types.Object
		want string
	}{
		{scope.Lookup("WallSeed"), "F.WallSeed"},
		{scope.Lookup("Thing"), "T.Thing"},
	}
	if thing, ok := scope.Lookup("Thing").(*types.TypeName); ok {
		named := thing.Type().(*types.Named)
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == "Fingerprint" {
				cases = append(cases, struct {
					obj  types.Object
					want string
				}{m, "M.Thing.Fingerprint"})
			}
		}
	}
	for _, c := range cases {
		got, ok := ObjectPath(c.obj)
		if !ok || got != c.want {
			t.Errorf("ObjectPath(%v) = %q, %v; want %q, true", c.obj, got, ok, c.want)
		}
	}

	if p, ok := ObjectPath(nil); ok {
		t.Errorf("ObjectPath(nil) = %q, true; want false", p)
	}
	// A local variable has no stable path an importer could name.
	inner := types.NewVar(0, pkg.Types, "local", types.Typ[types.Int])
	if p, ok := ObjectPath(inner); ok {
		t.Errorf("ObjectPath(local var) = %q, true; want false", p)
	}
}

func TestFactStoreRoundTrip(t *testing.T) {
	s := NewFactStore()
	s.put("det", "example.com/a", "F.One", &testFact{Note: "one"})
	s.put("det", "example.com/a", "F.Two", &testFact{Note: "two"})
	s.put("det", "example.com/b", "M.T.Three", &testFact{Note: "three"})

	data, err := s.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	recs, err := DecodeFacts(data)
	if err != nil {
		t.Fatalf("DecodeFacts: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("decoded %d records, want 3", len(recs))
	}
	// Records are sorted, so encoding is deterministic.
	if recs[0].Obj != "F.One" || recs[1].Obj != "F.Two" || recs[2].Obj != "M.T.Three" {
		t.Fatalf("record order %q %q %q not sorted", recs[0].Obj, recs[1].Obj, recs[2].Obj)
	}
	if f, ok := recs[0].Fact.(*testFact); !ok || f.Note != "one" {
		t.Fatalf("fact payload lost: %#v", recs[0].Fact)
	}
	data2, err := s.Encode()
	if err != nil {
		t.Fatalf("second Encode: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("two encodings of the same store differ")
	}

	if recs, err := DecodeFacts(nil); err != nil || len(recs) != 0 {
		t.Fatalf("DecodeFacts(empty) = %v, %v; want empty, nil", recs, err)
	}
}

func TestWriteFileValidated(t *testing.T) {
	s := NewFactStore()
	s.put("det", "example.com/a", "F.One", &testFact{Note: "one"})
	path := filepath.Join(t.TempDir(), "facts.vetx")
	if err := s.WriteFileValidated(path); err != nil {
		t.Fatalf("WriteFileValidated: %v", err)
	}

	reread := NewFactStore()
	if err := reread.ReadFile(path); err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if reread.Len() != 1 {
		t.Fatalf("reread %d facts, want 1", reread.Len())
	}
	if f, ok := reread.get("det", "example.com/a", "F.One", "testFact"); !ok {
		t.Fatal("fact missing after reread")
	} else if tf, ok := f.(*testFact); !ok || tf.Note != "one" {
		t.Fatalf("fact corrupted after reread: %#v", f)
	}

	// Corrupt bytes must fail loudly, not decode to garbage.
	if err := os.WriteFile(path, []byte("not a gob stream"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := NewFactStore().ReadFile(path); err == nil {
		t.Fatal("ReadFile accepted a corrupt facts file")
	}

	// Missing files are an empty contribution, not an error.
	if err := NewFactStore().ReadFile(filepath.Join(t.TempDir(), "absent.vetx")); err != nil {
		t.Fatalf("ReadFile(missing) = %v, want nil", err)
	}
}
