// Package noclock forbids wall-clock reads in the simulation layers.
//
// Every duration in this repository is simulated: machines charge
// clocks to operation traces and Spec.Seconds converts them. A stray
// time.Now or time.Since in a model, runner, report or verification
// package would mix host wall time into numbers that must be pure
// functions of (configuration, program, options) — the property every
// byte-exact golden and the metamorphic suite stand on. Tests and the
// CLIs may read the real clock; the internal packages may not.
package noclock

import (
	"go/ast"
	"strings"

	"sx4bench/internal/analysis"
)

var forbidden = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	// Timers are wall-clock reads in disguise: when they fire depends
	// on host scheduling, not model time.
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTicker": true,
	"NewTimer":  true,
}

var Analyzer = &analysis.Analyzer{
	Name: "noclock",
	Doc:  "forbid time.Now/Since/Until and wall-clock timers (Tick/After/AfterFunc/NewTicker/NewTimer) in the simulated-time packages (sx4bench/internal/...)",
	Run:  run,
}

func inScope(path string) bool {
	if !strings.HasPrefix(path, "sx4bench/internal/") {
		return false
	}
	// The analysis tooling itself is not part of the simulation.
	return !strings.HasPrefix(path, "sx4bench/internal/analysis")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			if name, ok := analysis.IsPkgFunc(obj, "time"); ok && forbidden[name] {
				pass.Reportf(id.Pos(),
					"wall-clock time.%s in simulated-time package %s: model time comes from trace clocks and Spec.Seconds",
					name, pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
