// Package fakecli is out of noclock's scope: CLIs may time their own
// wall-clock execution.
package fakecli

import "time"

func Elapsed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
