// Package fakemodel is a noclock fixture mimicking a simulation
// package (import path under sx4bench/internal/), where wall-clock
// reads are forbidden.
package fakemodel

import "time"

func Timings() (float64, time.Duration) {
	start := time.Now()          // want `wall-clock time\.Now in simulated-time package`
	d := time.Since(start)       // want `wall-clock time\.Since`
	_ = time.Until(start.Add(d)) // want `wall-clock time\.Until`
	const clockNS = 9.2          // simulated time is fine
	_ = clockNS
	return clockNS, d
}

// Durations and time arithmetic on values are legal; only clock reads
// are not.
func Scale(d time.Duration) time.Duration { return 2 * d }

func waived() time.Time {
	//sx4lint:ignore noclock fixture demonstrating an explicit waiver
	return time.Now()
}
