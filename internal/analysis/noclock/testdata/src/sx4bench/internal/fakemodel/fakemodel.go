// Package fakemodel is a noclock fixture mimicking a simulation
// package (import path under sx4bench/internal/), where wall-clock
// reads are forbidden.
package fakemodel

import "time"

func Timings() (float64, time.Duration) {
	start := time.Now()          // want `wall-clock time\.Now in simulated-time package`
	d := time.Since(start)       // want `wall-clock time\.Since`
	_ = time.Until(start.Add(d)) // want `wall-clock time\.Until`
	const clockNS = 9.2          // simulated time is fine
	_ = clockNS
	return clockNS, d
}

// Durations and time arithmetic on values are legal; only clock reads
// are not.
func Scale(d time.Duration) time.Duration { return 2 * d }

func waived() time.Time {
	//sx4lint:ignore noclock fixture demonstrating an explicit waiver
	return time.Now()
}

// Timers are clock reads in disguise: when they fire depends on host
// scheduling, not model time.
func timers() {
	_ = time.Tick(time.Second)            // want `wall-clock time\.Tick`
	_ = time.After(time.Second)           // want `wall-clock time\.After`
	_ = time.AfterFunc(time.Second, noop) // want `wall-clock time\.AfterFunc`
	_ = time.NewTicker(time.Second)       // want `wall-clock time\.NewTicker`
	_ = time.NewTimer(time.Second)        // want `wall-clock time\.NewTimer`
}

func noop() {}
