// Package fakechaos is a noclock fixture mirroring the chaos harness
// (internal/chaos): injected latency stalls a goroutine with
// time.Sleep, which is legal — sleeping reads no clock and produces
// no bytes, and the stall length came from the seeded plan — but
// scheduling wall-clock timers without a waiver is still flagged.
package fakechaos

import "time"

// Inject stalls the request by the planned amount. The duration is a
// pure function of (seed, ordinal); only the waiting itself touches
// the host scheduler, which noclock permits.
func Inject(d time.Duration) {
	time.Sleep(d)
}

// drip is the forbidden variant: a ticker is a wall-clock read in
// disguise, so trickling bytes on host time needs either a waiver or
// (as internal/chaos does) a plain counter with no timer at all.
func drip() {
	_ = time.NewTicker(time.Millisecond) // want `wall-clock time\.NewTicker`
}

var _ = drip
