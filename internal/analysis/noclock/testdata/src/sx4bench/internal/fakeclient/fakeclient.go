// Package fakeclient is a noclock fixture mirroring the resilient
// daemon client (internal/client): retry jitter must be a pure
// function of (seed, attempt) so fleets of clients are replayable,
// the one sanctioned wall-clock timer that paces the actual waiting
// carries an audited waiver, and any unwaived clock read is still
// flagged.
package fakeclient

import (
	"context"
	"time"
)

// Backoff is legal: pure duration arithmetic, no clock anywhere. The
// wait for a given (seed, attempt) is the same in every run — this is
// what keeps retry schedules out of the goldens' way.
func Backoff(seed uint64, attempt int) time.Duration {
	cap := 100 * time.Millisecond
	for i := 1; i < attempt && cap < 5*time.Second; i++ {
		cap *= 2
	}
	return cap/2 + time.Duration(seed%uint64(cap/2))
}

// sleepWall performs the wait. Arming a timer is a wall-clock act, so
// it needs the waiver — sanctioned because the duration was computed
// deterministically above and no result byte depends on when the
// timer actually fires.
func sleepWall(ctx context.Context, d time.Duration) error {
	//sx4lint:ignore noclock backoff wait is wall-clock scheduling, never shapes a result byte
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// deadline is the forbidden shortcut: deriving retry state from the
// host clock instead of the request context.
func deadline() time.Time {
	return time.Now() // want `wall-clock time\.Now in simulated-time package`
}

var _ = sleepWall
var _ = deadline
