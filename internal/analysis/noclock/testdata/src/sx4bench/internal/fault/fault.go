// Package fault is a noclock fixture for the fault-injection layer:
// fault schedules are simulated-time (Event.At is seconds on the
// scheduler's clock, derived from a seed), so wall-clock reads are as
// forbidden here as in the machine models. Seeding a plan from the
// host clock would make the canonical resilience golden unreproducible.
package fault

import "time"

type Event struct{ At float64 }

func Schedule(seed uint64) []Event {
	_ = time.Now() // want `wall-clock time\.Now in simulated-time package`
	// Deterministic simulated timestamps from the seed are fine.
	return []Event{{At: float64(seed%100) / 3.0}}
}
