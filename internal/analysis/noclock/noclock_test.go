package noclock_test

import (
	"testing"

	"sx4bench/internal/analysis/analysistest"
	"sx4bench/internal/analysis/noclock"
)

func TestNoClock(t *testing.T) {
	analysistest.Run(t, "testdata", noclock.Analyzer,
		"sx4bench/internal/fakemodel",
		"sx4bench/internal/fault",
		"sx4bench/internal/fakeclient",
		"sx4bench/internal/fakechaos",
		"sx4bench/cmd/fakecli",
	)
}
