package seededrand_test

import (
	"testing"

	"sx4bench/internal/analysis/analysistest"
	"sx4bench/internal/analysis/seededrand"
)

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, "testdata", seededrand.Analyzer,
		"sx4bench/internal/fakekernels",
	)
}
