// Package seededrand forbids the global math/rand source in non-test
// code.
//
// The top-level math/rand functions (rand.Intn, rand.Float64, ...)
// share one process-wide, auto-seeded source. Any number drawn from
// it differs run to run and worker to worker, so a single call in a
// golden-feeding path would break byte-exact reproduction, and a call
// in a Workers-parallel path would make parallel runs diverge from
// serial ones. Non-test code must thread an explicitly seeded
// rand.New(rand.NewSource(seed)) — or the repo's SplitMix64 noise
// streams — so every draw is attributable to a seed. (Test files are
// exempt and are not loaded by the analysis driver at all.)
package seededrand

import (
	"go/ast"
	"strings"

	"sx4bench/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "forbid the auto-seeded global math/rand functions in non-test code; require explicit rand.New(rand.NewSource(seed)) or SplitMix64 streams",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !strings.HasPrefix(pass.Pkg.Path(), "sx4bench") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			for _, pkg := range []string{"math/rand", "math/rand/v2"} {
				// Every package-level function except the New*
				// constructors draws from the shared global source.
				if name, ok := analysis.IsPkgFunc(obj, pkg); ok && !strings.HasPrefix(name, "New") {
					pass.Reportf(id.Pos(),
						"global %s.%s uses the process-wide auto-seeded source; use rand.New(rand.NewSource(seed)) or a core SplitMix64 stream",
						pkg, name)
				}
			}
			return true
		})
	}
	return nil
}
