// Package fakekernels is a seededrand fixture: non-test module code
// must thread an explicitly seeded source.
package fakekernels

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// Seeded draws are the sanctioned form.
func Fill(dst []float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range dst {
		dst[i] = rng.Float64()
	}
}

func Bad(dst []float64) int {
	for i := range dst {
		dst[i] = rand.Float64() // want `global math/rand\.Float64 uses the process-wide auto-seeded source`
	}
	rand.Shuffle(len(dst), func(i, j int) { // want `global math/rand\.Shuffle`
		dst[i], dst[j] = dst[j], dst[i]
	})
	return rand.Intn(4) // want `global math/rand\.Intn`
}

func BadV2() int {
	return randv2.IntN(4) // want `global math/rand/v2\.IntN`
}
