// Package fakekernels is a seededrand fixture: non-test module code
// must thread an explicitly seeded source.
package fakekernels

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// Seeded draws are the sanctioned form.
func Fill(dst []float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range dst {
		dst[i] = rng.Float64()
	}
}

func Bad(dst []float64) int {
	for i := range dst {
		dst[i] = rand.Float64() // want `global math/rand\.Float64 uses the process-wide auto-seeded source`
	}
	rand.Shuffle(len(dst), func(i, j int) { // want `global math/rand\.Shuffle`
		dst[i], dst[j] = dst[j], dst[i]
	})
	return rand.Intn(4) // want `global math/rand\.Intn`
}

func BadV2() int {
	return randv2.IntN(4) // want `global math/rand/v2\.IntN`
}

// The v2 package's top-level draws are auto-seeded too; every entry
// point is forbidden, not just IntN.
func BadV2More(dst []float64) {
	for i := range dst {
		dst[i] = randv2.Float64() // want `global math/rand/v2\.Float64`
	}
	randv2.Shuffle(len(dst), func(i, j int) { // want `global math/rand/v2\.Shuffle`
		dst[i], dst[j] = dst[j], dst[i]
	})
	_ = randv2.Perm(4) // want `global math/rand/v2\.Perm`
}

// A v2 generator over an explicit PCG seed is the sanctioned form —
// constructors are not draws.
func FillV2(dst []float64, seed uint64) {
	rng := randv2.New(randv2.NewPCG(seed, seed^0x9e3779b9))
	for i := range dst {
		dst[i] = rng.Float64()
	}
}
