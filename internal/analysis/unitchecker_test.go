package analysis_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"sx4bench/internal/analysis"
	"sx4bench/internal/analysis/noclock"
	"sx4bench/internal/analysis/sx4lint"
)

// TestRunVetCfg drives the unitchecker protocol the way `go vet
// -vettool=sx4lint` does: a hand-built JSON config describing one
// package, with imports resolved through export data.
func TestRunVetCfg(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "fakemodel.go")
	if err := os.WriteFile(src, []byte(`package fakemodel

import "time"

func Start() time.Time { return time.Now() }
`), 0o666); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command("go", "list", "-export", "-f", "{{.ImportPath}} {{.Export}}", "-deps", "time").Output()
	if err != nil {
		t.Fatalf("go list -export time: %v", err)
	}
	packageFile := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if path, file, ok := strings.Cut(line, " "); ok && file != "" {
			packageFile[path] = file
		}
	}

	vetx := filepath.Join(dir, "pkg.vetx")
	cfg := analysis.VetConfig{
		ID:          "sx4bench/internal/fakemodel",
		Compiler:    "gc",
		Dir:         dir,
		ImportPath:  "sx4bench/internal/fakemodel",
		GoFiles:     []string{src},
		PackageFile: packageFile,
		VetxOutput:  vetx,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}

	diags, err := analysis.RunVetCfg(cfgPath, []*analysis.Analyzer{noclock.Analyzer})
	if err != nil {
		t.Fatalf("RunVetCfg: %v", err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "time.Now") {
		t.Fatalf("want one time.Now diagnostic, got %v", diags)
	}
	requireFactsRoundTrip(t, vetx)

	// Test-package variants are skipped wholesale but still get a
	// facts file (the go command requires one), and that file must be
	// decodable and round-trip like any other.
	cfg.ImportPath = "sx4bench/internal/fakemodel [sx4bench/internal/fakemodel.test]"
	cfg.VetxOutput = filepath.Join(dir, "test.vetx")
	data, _ = json.Marshal(cfg)
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	diags, err = analysis.RunVetCfg(cfgPath, []*analysis.Analyzer{noclock.Analyzer})
	if err != nil || len(diags) != 0 {
		t.Fatalf("test variant: want no diagnostics, got %v, %v", diags, err)
	}
	requireFactsRoundTrip(t, cfg.VetxOutput)
}

// requireFactsRoundTrip asserts a facts file exists, decodes, and
// re-encodes to the identical bytes — the write → reread → identical
// contract every RunVetCfg exit path must honour.
func requireFactsRoundTrip(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("facts file not written: %v", err)
	}
	recs, err := analysis.DecodeFacts(data)
	if err != nil {
		t.Fatalf("facts file %s does not decode: %v", path, err)
	}
	store := analysis.NewFactStore()
	if err := store.ReadFile(path); err != nil {
		t.Fatalf("facts file %s does not reread: %v", path, err)
	}
	if store.Len() != len(recs) {
		t.Fatalf("facts file %s: reread %d facts, decoded %d", path, store.Len(), len(recs))
	}
	reencoded, err := store.Encode()
	if err != nil {
		t.Fatalf("facts from %s do not re-encode: %v", path, err)
	}
	if len(data) == 0 && store.Len() == 0 {
		return // the canonical empty facts file
	}
	if !bytes.Equal(data, reencoded) {
		t.Fatalf("facts file %s does not round-trip: %d bytes on disk, %d re-encoded", path, len(data), len(reencoded))
	}
}

// TestVetFactsCrossPackage drives two chained RunVetCfg invocations
// over a real two-package module — the full unitchecker facts
// protocol: the leaf package's detflow facts are serialized to its
// VetxOutput, handed to the consumer via PackageVetx, and surface as
// a diagnostic at the consumer's call site in a critical package.
func TestVetFactsCrossPackage(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module sx4bench\n\ngo 1.24\n")
	write("internal/fakeleafdet/leaf.go", `package fakeleafdet

import "time"

func WallSeed() int64 { return time.Now().UnixNano() }
`)
	write("internal/core/fakeconsumer/consumer.go", `package fakeconsumer

import "sx4bench/internal/fakeleafdet"

func Render() int64 { return fakeleafdet.WallSeed() }
`)

	// Compile both packages so export data exists, as the go command
	// would have before invoking the vettool.
	cmd := exec.Command("go", "list", "-e", "-export", "-f", "{{.ImportPath}} {{.Export}}", "-deps", "./...")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list -export in module: %v", err)
	}
	packageFile := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if path, file, ok := strings.Cut(line, " "); ok && file != "" {
			packageFile[path] = file
		}
	}

	runCfg := func(cfg analysis.VetConfig) []analysis.Diagnostic {
		t.Helper()
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfgPath := filepath.Join(dir, analysis.PathBase(cfg.ImportPath)+".cfg")
		if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
			t.Fatal(err)
		}
		diags, err := analysis.RunVetCfg(cfgPath, sx4lint.Analyzers())
		if err != nil {
			t.Fatalf("RunVetCfg(%s): %v", cfg.ImportPath, err)
		}
		return diags
	}

	// Invocation 1: the leaf, facts-only (how go vet analyzes deps).
	leafVetx := filepath.Join(dir, "leaf.vetx")
	diags := runCfg(analysis.VetConfig{
		ID:          "sx4bench/internal/fakeleafdet",
		Compiler:    "gc",
		Dir:         filepath.Join(dir, "internal", "fakeleafdet"),
		ImportPath:  "sx4bench/internal/fakeleafdet",
		GoFiles:     []string{filepath.Join(dir, "internal", "fakeleafdet", "leaf.go")},
		PackageFile: packageFile,
		VetxOnly:    true,
		VetxOutput:  leafVetx,
	})
	if len(diags) != 0 {
		t.Fatalf("VetxOnly leaf reported diagnostics: %v", diags)
	}
	requireFactsRoundTrip(t, leafVetx)
	store := analysis.NewFactStore()
	if err := store.ReadFile(leafVetx); err != nil {
		t.Fatal(err)
	}
	if store.Len() == 0 {
		t.Fatal("leaf facts file holds no facts; expected a Nondeterministic fact for WallSeed")
	}

	// Invocation 2: the consumer, with the leaf's facts wired in the
	// way the go command threads PackageVetx.
	diags = runCfg(analysis.VetConfig{
		ID:          "sx4bench/internal/core/fakeconsumer",
		Compiler:    "gc",
		Dir:         filepath.Join(dir, "internal", "core", "fakeconsumer"),
		ImportPath:  "sx4bench/internal/core/fakeconsumer",
		GoFiles:     []string{filepath.Join(dir, "internal", "core", "fakeconsumer", "consumer.go")},
		PackageFile: packageFile,
		PackageVetx: map[string]string{"sx4bench/internal/fakeleafdet": leafVetx},
		VetxOutput:  filepath.Join(dir, "consumer.vetx"),
	})
	var hits []string
	for _, d := range diags {
		if d.Analyzer == "detflow" {
			hits = append(hits, d.Message)
		}
	}
	if len(hits) != 1 || !strings.Contains(hits[0], "fakeleafdet.WallSeed") || !strings.Contains(hits[0], "wall clock") {
		t.Fatalf("want one detflow diagnostic naming fakeleafdet.WallSeed's wall-clock taint, got %q (all: %v)", hits, diags)
	}
}
