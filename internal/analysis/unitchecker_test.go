package analysis_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"sx4bench/internal/analysis"
	"sx4bench/internal/analysis/noclock"
)

// TestRunVetCfg drives the unitchecker protocol the way `go vet
// -vettool=sx4lint` does: a hand-built JSON config describing one
// package, with imports resolved through export data.
func TestRunVetCfg(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "fakemodel.go")
	if err := os.WriteFile(src, []byte(`package fakemodel

import "time"

func Start() time.Time { return time.Now() }
`), 0o666); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command("go", "list", "-export", "-f", "{{.ImportPath}} {{.Export}}", "-deps", "time").Output()
	if err != nil {
		t.Fatalf("go list -export time: %v", err)
	}
	packageFile := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if path, file, ok := strings.Cut(line, " "); ok && file != "" {
			packageFile[path] = file
		}
	}

	vetx := filepath.Join(dir, "pkg.vetx")
	cfg := analysis.VetConfig{
		ID:          "sx4bench/internal/fakemodel",
		Compiler:    "gc",
		Dir:         dir,
		ImportPath:  "sx4bench/internal/fakemodel",
		GoFiles:     []string{src},
		PackageFile: packageFile,
		VetxOutput:  vetx,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}

	diags, err := analysis.RunVetCfg(cfgPath, []*analysis.Analyzer{noclock.Analyzer})
	if err != nil {
		t.Fatalf("RunVetCfg: %v", err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "time.Now") {
		t.Fatalf("want one time.Now diagnostic, got %v", diags)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file not written: %v", err)
	}

	// Test-package variants are skipped wholesale but still get a
	// facts file (the go command requires one).
	cfg.ImportPath = "sx4bench/internal/fakemodel [sx4bench/internal/fakemodel.test]"
	cfg.VetxOutput = filepath.Join(dir, "test.vetx")
	data, _ = json.Marshal(cfg)
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	diags, err = analysis.RunVetCfg(cfgPath, []*analysis.Analyzer{noclock.Analyzer})
	if err != nil || len(diags) != 0 {
		t.Fatalf("test variant: want no diagnostics, got %v, %v", diags, err)
	}
	if _, err := os.Stat(cfg.VetxOutput); err != nil {
		t.Errorf("facts file not written for test variant: %v", err)
	}
}
