// Package hint implements the HINT benchmark of Gustafson and Snell
// (HICSS-28, 1995): hierarchical integration producing rational bounds
// on the area under y = (1-x)/(1+x) for x in [0,1], measured in QUIPS
// (quality improvements per second).
//
// Two things are provided: the real algorithm (run on the host, used to
// verify the mathematics — the bounds bracket the true area 2 ln 2 - 1
// and quality improves monotonically), and an analytic QUIPS model for
// the machine models of Table 1. HINT's working set is small and its
// work scalar and branchy, which is why it ranks cache-based
// workstations above parallel vector processors — the inversion the
// paper criticizes.
package hint

import (
	"container/heap"
	"math"

	"sx4bench/internal/sx4/spu"
	"sx4bench/internal/target"
)

// TrueArea is the exact integral of (1-x)/(1+x) over [0,1].
var TrueArea = 2*math.Ln2 - 1

func f(x float64) float64 { return (1 - x) / (1 + x) }

// interval is one subdivision cell. f is decreasing on [0,1], so the
// lower bound uses the right endpoint and the upper bound the left.
type interval struct {
	a, b float64
}

func (iv interval) lower() float64 { return f(iv.b) * (iv.b - iv.a) }
func (iv interval) upper() float64 { return f(iv.a) * (iv.b - iv.a) }
func (iv interval) gap() float64   { return iv.upper() - iv.lower() }

// gapHeap orders intervals by descending bound gap.
type gapHeap []interval

func (h gapHeap) Len() int           { return len(h) }
func (h gapHeap) Less(i, j int) bool { return h[i].gap() > h[j].gap() }
func (h gapHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *gapHeap) Push(x any)        { *h = append(*h, x.(interval)) }
func (h *gapHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Step is one quality improvement: the state after a subdivision.
type Step struct {
	Iteration int
	Lower     float64
	Upper     float64
	Quality   float64
}

// Run performs n hierarchical subdivisions and returns the recorded
// steps (one per iteration).
func Run(n int) []Step {
	h := &gapHeap{{0, 1}}
	lower := (*h)[0].lower()
	upper := (*h)[0].upper()
	steps := make([]Step, 0, n)
	for i := 0; i < n; i++ {
		worst := heap.Pop(h).(interval)
		lower -= worst.lower()
		upper -= worst.upper()
		mid := 0.5 * (worst.a + worst.b)
		left := interval{worst.a, mid}
		right := interval{mid, worst.b}
		lower += left.lower() + right.lower()
		upper += left.upper() + right.upper()
		heap.Push(h, left)
		heap.Push(h, right)
		steps = append(steps, Step{
			Iteration: i + 1,
			Lower:     lower,
			Upper:     upper,
			Quality:   1 / (upper - lower),
		})
	}
	return steps
}

// Model parameters: the cost of one HINT subdivision in machine terms,
// and the average quality gained per subdivision. The work is scalar
// (heap bookkeeping, two function evaluations, bound updates) over a
// small working set.
const (
	opsPerStep     = 40.0
	wordsPerStep   = 10.0
	qualityPerStep = 2.0
)

// ModelMQUIPS estimates the machine's HINT score in millions of QUIPS
// from its scalar profile.
func ModelMQUIPS(p target.ScalarProfile) float64 {
	clocks := opsPerStep / p.IssuePerClock
	if p.HasCache {
		clocks += wordsPerStep / p.CacheWordsPerClock
	} else {
		clocks += wordsPerStep * p.MemClocksPerWord
	}
	stepSeconds := clocks * p.ClockNS * 1e-9
	return qualityPerStep / stepSeconds / 1e6
}

// FromSPU estimates MQUIPS from a detailed scalar-unit model (package
// spu) at a clock: the HINT working set is cache resident, with a few
// data-dependent branches per subdivision. This gives the SX-4's own
// HINT score — a respectable workstation-class number that sees none
// of the vector unit, which is precisely the paper's complaint.
func FromSPU(u spu.Unit, clockNS float64) float64 {
	clocks := u.Clocks(spu.Loop{
		Iterations:      1,
		Instructions:    opsPerStep,
		MemRefs:         wordsPerStep,
		Branches:        4,
		WorkingSetBytes: 32 << 10,
	})
	return qualityPerStep / (clocks * clockNS * 1e-9) / 1e6
}
