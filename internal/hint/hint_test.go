package hint

import (
	"math"
	"testing"

	"sx4bench/internal/machine"
	"sx4bench/internal/sx4"
	"sx4bench/internal/sx4/spu"
)

func TestBoundsBracketTrueArea(t *testing.T) {
	steps := Run(5000)
	last := steps[len(steps)-1]
	if last.Lower > TrueArea || last.Upper < TrueArea {
		t.Errorf("bounds [%v, %v] do not bracket true area %v", last.Lower, last.Upper, TrueArea)
	}
	for _, s := range steps {
		if s.Lower > TrueArea+1e-12 || s.Upper < TrueArea-1e-12 {
			t.Fatalf("iteration %d bounds [%v,%v] exclude true area", s.Iteration, s.Lower, s.Upper)
		}
	}
}

func TestQualityImprovesMonotonically(t *testing.T) {
	steps := Run(2000)
	prev := 0.0
	for _, s := range steps {
		if s.Quality < prev {
			t.Fatalf("quality decreased at iteration %d: %v < %v", s.Iteration, s.Quality, prev)
		}
		prev = s.Quality
	}
}

func TestConvergence(t *testing.T) {
	steps := Run(20000)
	last := steps[len(steps)-1]
	gap := last.Upper - last.Lower
	if gap > 1e-3 {
		t.Errorf("after 20000 subdivisions gap = %v, want < 1e-3", gap)
	}
	mid := 0.5 * (last.Upper + last.Lower)
	if math.Abs(mid-TrueArea) > 1e-3 {
		t.Errorf("midpoint %v far from true area %v", mid, TrueArea)
	}
}

func TestQualityScalesLinearly(t *testing.T) {
	// Hierarchical subdivision of this smooth integrand gains quality
	// roughly linearly in the subdivision count.
	steps := Run(8000)
	q2000 := steps[1999].Quality
	q8000 := steps[7999].Quality
	ratio := q8000 / q2000
	if ratio < 2 || ratio > 8 {
		t.Errorf("quality scaling 8000/2000 = %.2f, want within [2, 8]", ratio)
	}
}

func TestModelMQUIPSTable1(t *testing.T) {
	// Paper Table 1 HINT MQUIPS: Sparc20 3.5, RS6K/590 5.2, J90 1.7,
	// Y-MP 3.1. Accept ±30%.
	cases := []struct {
		target machine.Target
		paper  float64
	}{
		{machine.SunSparc20(), 3.5},
		{machine.IBMRS6000590(), 5.2},
		{machine.CrayJ90(), 1.7},
		{machine.CrayYMP(), 3.1},
	}
	for _, c := range cases {
		got := ModelMQUIPS(c.target.Scalar())
		lo, hi := 0.7*c.paper, 1.3*c.paper
		if got < lo || got > hi {
			t.Errorf("%s HINT = %.2f MQUIPS, want within [%.2f, %.2f] (paper %.1f)",
				c.target.Name(), got, lo, hi, c.paper)
		}
	}
}

func TestHINTInversionVsRADABS(t *testing.T) {
	// The paper's criticism: HINT ranks the workstations above the
	// vector machines, opposite to their climate-kernel performance.
	sparc := ModelMQUIPS(machine.SunSparc20().Scalar())
	rs6k := ModelMQUIPS(machine.IBMRS6000590().Scalar())
	j90 := ModelMQUIPS(machine.CrayJ90().Scalar())
	ymp := ModelMQUIPS(machine.CrayYMP().Scalar())
	if !(sparc > j90 && sparc > ymp && rs6k > ymp) {
		t.Errorf("HINT inversion absent: sparc=%.2f rs6k=%.2f j90=%.2f ymp=%.2f",
			sparc, rs6k, j90, ymp)
	}
}

func TestFromSPUSX4Score(t *testing.T) {
	// The SX-4's scalar unit scores like a good workstation on HINT —
	// the vector unit (97% of the machine's arithmetic capability) is
	// invisible to the metric.
	sx4Score := FromSPU(spu.NewSX4(), 9.2)
	j90 := ModelMQUIPS(machine.CrayJ90().Scalar())
	rad := 865.9 / 178.1 // SX-4/YMP RADABS ratio from the paper
	hintRatio := sx4Score / ModelMQUIPS(machine.CrayYMP().Scalar())
	if sx4Score < 3 || sx4Score > 15 {
		t.Errorf("SX-4 HINT = %.1f MQUIPS, want workstation-class [3, 15]", sx4Score)
	}
	if sx4Score <= j90 {
		t.Errorf("SX-4 scalar unit (%.1f) should outrun the J90's (%.1f)", sx4Score, j90)
	}
	if hintRatio >= rad {
		t.Errorf("HINT's SX-4/YMP ratio (%.2f) should understate the RADABS ratio (%.2f)", hintRatio, rad)
	}
}

func TestSX4ScalarProfileWorks(t *testing.T) {
	// The SX-4's superscalar unit with its 64KB cache gets a
	// respectable HINT score — the metric just doesn't see the vector
	// unit at all.
	p := machine.ScalarProfile{
		ClockNS:       sx4.Benchmarked().ClockNS,
		IssuePerClock: 2,
		HasCache:      true, CacheWordsPerClock: 2,
	}
	got := ModelMQUIPS(p)
	if got < 4 || got > 20 {
		t.Errorf("SX-4 scalar-unit MQUIPS = %.1f, want within [4, 20]", got)
	}
}
