// Package fleet is the capacity-planning layer: N heterogeneous
// modeled nodes — any registry target — standing behind a single
// NQS-style cluster queue, driven by seeded multi-tenant arrival
// processes over week-long simulated horizons, with per-node fault
// plans derived from one fleet seed. It generalizes the paper's
// single-node PRODLOAD experiment to the question operators actually
// ask: how many nodes survive this traffic at this failure rate?
//
// The layering is deliberate. Each node is an internal/superux System
// (the OS model PRODLOAD already runs on), its failure schedule is an
// internal/fault plan (NewNodePlan keeps the canonical single-node
// plan unperturbed), node shapes come from the target registry's
// specification sheets, and the Monte Carlo fan-out runs on
// internal/core/sched so scenario results are byte-identical across
// worker counts. The concrete machine models are never imported —
// fleet consumes spec sheets and fingerprints, not engines — and the
// layering analyzer plus TestFleetImportAllowlist pin that.
//
// Determinism rules, fleet-wide:
//
//   - every node advances to the same simulated time before any
//     cross-node action (arrival dispatch, migration placement) happens
//     at that time, so the single-node completions-win-ties rule holds
//     across the cluster;
//   - nodes are visited in fleet order (index order) at every step;
//   - all randomness — arrival times, job classes, per-node fault
//     schedules, scenario derivations — flows from SplitMix64 streams
//     keyed by explicit seeds, never the host clock or a global source.
package fleet

import (
	"fmt"
	"strconv"
	"strings"

	"sx4bench/internal/superux"
	"sx4bench/internal/target"
)

// DefaultNodeMemGB stands in for the main-memory capacity of machines
// whose spec sheet the paper never prints (the Table 1 comparators
// carry no memory figure).
const DefaultNodeMemGB = 8.0

// NodeSpec is one fleet node: a registry machine reduced to the facts
// the cluster scheduler needs. The concrete model never crosses into
// this package — a node is its spec sheet plus a fingerprint.
type NodeSpec struct {
	// Machine is the registry name the node was resolved from.
	Machine string
	// Title is the model designation (target.Name()).
	Title string
	// CPUs and MemGB are the node's schedulable capacity.
	CPUs  int
	MemGB float64
	// PerCPUMFLOPS converts a job's work demand into seconds on this
	// node, which is what makes the fleet heterogeneous: the same
	// arrival runs longer on a slower machine.
	PerCPUMFLOPS float64
	// Fingerprint is the underlying target's configuration hash; the
	// Monte Carlo memo keys scenarios on it.
	Fingerprint uint64
}

// ParseSpec resolves a fleet specification string against the machine
// registry: comma-separated entries, each a registry name with an
// optional "xN" replication suffix — "sx4-32x2,c90" is two SX-4/32
// nodes and one C90. The expanded node list is returned in
// specification order, which is the fleet's canonical node order.
func ParseSpec(spec string) ([]NodeSpec, error) {
	var nodes []NodeSpec
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("fleet: empty entry in spec %q", spec)
		}
		name, count := entry, 1
		if i := strings.LastIndex(entry, "x"); i > 0 {
			if n, err := strconv.Atoi(entry[i+1:]); err == nil {
				if n < 1 || n > maxFleetNodes {
					return nil, fmt.Errorf("fleet: replication %q out of range [1, %d]", entry, maxFleetNodes)
				}
				name, count = entry[:i], n
			}
		}
		tgt, err := target.Lookup(name)
		if err != nil {
			return nil, fmt.Errorf("fleet: spec %q: %w", spec, err)
		}
		ns := specOf(name, tgt)
		for i := 0; i < count; i++ {
			nodes = append(nodes, ns)
		}
	}
	if len(nodes) > maxFleetNodes {
		return nil, fmt.Errorf("fleet: %d nodes exceeds the %d-node cap", len(nodes), maxFleetNodes)
	}
	return nodes, nil
}

// maxFleetNodes bounds a fleet specification: far above any meaningful
// scenario, far below anything that could turn one request into a
// denial of service (the sx4d capacity endpoint parses untrusted
// specs).
const maxFleetNodes = 64

// specOf reduces a resolved target to its node spec.
func specOf(name string, tgt target.Target) NodeSpec {
	spec := tgt.Spec()
	mem := spec.MainMemoryGB
	if mem <= 0 {
		mem = DefaultNodeMemGB
	}
	rate := spec.PeakMFLOPSPerCPU
	if rate <= 0 {
		rate = 100 // a floor so work always converts to finite seconds
	}
	return NodeSpec{
		Machine:      strings.ToLower(strings.TrimSpace(name)),
		Title:        tgt.Name(),
		CPUs:         spec.CPUs,
		MemGB:        mem,
		PerCPUMFLOPS: rate,
		Fingerprint:  tgt.Fingerprint(),
	}
}

// newNodeSystem stands up the SUPER-UX instance for one node: the
// PRODLOAD resource-block geometry generalized — nodes with eight or
// more processors split into a large batch block and a small
// interactive-sized one (so a CPU failure degrades the node before
// killing it), smaller nodes run a single block.
func newNodeSystem(ns NodeSpec) *superux.System {
	if ns.CPUs >= 8 {
		aux := ns.CPUs / 4
		return superux.NewSystem(
			superux.ResourceBlock{Name: "rb0", MaxCPUs: ns.CPUs - aux, MemGB: ns.MemGB * 0.75, Policy: superux.FIFO},
			superux.ResourceBlock{Name: "rb1", MaxCPUs: aux, MemGB: ns.MemGB * 0.25, Policy: superux.FIFO},
		)
	}
	return superux.NewSystem(
		superux.ResourceBlock{Name: "rb0", MaxCPUs: ns.CPUs, MemGB: ns.MemGB, Policy: superux.FIFO},
	)
}
