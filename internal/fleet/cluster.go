package fleet

import (
	"math"

	"sx4bench/internal/fault"
	"sx4bench/internal/superux"
)

// Node is one member of a running cluster: a spec sheet plus the live
// SUPER-UX instance scheduled on it.
type Node struct {
	Spec NodeSpec
	Sys  *superux.System
}

// Cluster stands N nodes behind one NQS-style queue: arrivals are
// routed to the least-loaded node that can hold them, faults delivered
// per node from plans derived off one fleet seed, and jobs a CPU
// failure leaves homeless on one node migrate — checkpoint state and
// all — to a surviving node instead of failing, as long as anywhere in
// the fleet can hold them.
type Cluster struct {
	Nodes []*Node

	jobs    []jobRecord
	byJob   map[jobKey]int // (node, local job ID) -> jobs index
	pending []pendingMigration
}

// jobKey addresses a job record by its current placement.
type jobKey struct {
	node    int
	localID int
}

// jobRecord is the cluster-level life of one arrival.
type jobRecord struct {
	name       string
	submitAt   float64
	node       int // current node index; -1 once failed fleet-wide
	localID    int
	migrations int
}

// pendingMigration is a job accepted off a failing node, awaiting
// placement once every node has reached the migration's simulated
// time.
type pendingMigration struct {
	record int
	job    superux.Job
}

// NewCluster stands up one node per spec, each with its fault plan
// derived from the fleet seed (node i runs fault.NewNodePlan(seed, i,
// horizon, eventsPerNode)) and its migrator wired into the cluster.
// eventsPerNode == 0 builds a fault-free fleet.
func NewCluster(specs []NodeSpec, fleetSeed int64, horizon float64, eventsPerNode int) *Cluster {
	c := &Cluster{byJob: make(map[jobKey]int)}
	for i, ns := range specs {
		n := &Node{Spec: ns, Sys: newNodeSystem(ns)}
		if eventsPerNode > 0 {
			n.Sys.SetInjector(fault.NewNodePlan(fleetSeed, i, horizon, eventsPerNode))
		}
		from := i
		n.Sys.SetMigrator(func(j superux.Job) bool { return c.acceptMigration(from, j) })
		c.Nodes = append(c.Nodes, n)
	}
	return c
}

// acceptMigration is node from's migrator: accept the homeless job iff
// some other live node can hold it, and buffer the move — placement
// happens only after every node has advanced to the current time, so
// migrations never outrun the completions-win-ties rule.
func (c *Cluster) acceptMigration(from int, j superux.Job) bool {
	if c.bestNode(j.CPUs, j.MemGB, func(*Node) float64 { return j.Seconds }, from) < 0 {
		return false
	}
	rec, ok := c.byJob[jobKey{node: from, localID: j.ID}]
	if !ok {
		return false // not a cluster-routed job (defensive; never expected)
	}
	c.pending = append(c.pending, pendingMigration{record: rec, job: j})
	return true
}

// bestNode picks the home for a job of the given shape: among live
// nodes (excluding skip) whose blocks can hold it, the one with the
// smallest estimated completion — per-CPU-normalized backlog plus the
// job's duration at that node's speed (secondsFn, so a fast idle node
// beats a slow idle one) — with ties to the lowest fleet index.
// Returns -1 when nowhere fits.
func (c *Cluster) bestNode(cpus int, memGB float64, secondsFn func(*Node) float64, skip int) int {
	best, bestScore := -1, math.Inf(1)
	for i, n := range c.Nodes {
		if i == skip || n.Sys.Down() || !n.Sys.CanHold(cpus, memGB) {
			continue
		}
		score := n.Sys.Backlog()/float64(n.Spec.CPUs) + secondsFn(n)
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// secondsOn converts an arrival's demand into a duration on a node:
// fixed Seconds win, otherwise work over the node's aggregate rate for
// the job's processor allocation.
func secondsOn(a Arrival, n *Node) float64 {
	if a.Seconds > 0 {
		return a.Seconds
	}
	cpus := a.CPUs
	if cpus < 1 {
		cpus = 1
	}
	return a.WorkMFLOP / (n.Spec.PerCPUMFLOPS * float64(cpus))
}

// homeBlock returns the first surviving resource block (registration
// order) on the node that admits the shape.
func homeBlock(n *Node, cpus int, memGB float64) (string, bool) {
	for _, name := range n.Sys.BlockNames() {
		b := n.Sys.Blocks[name]
		if !b.Failed && cpus <= b.MaxCPUs && memGB <= b.MemGB {
			return name, true
		}
	}
	return "", false
}

// Result is one cluster run's outcome.
type Result struct {
	// Jobs counts arrivals; Finished those that completed.
	Jobs     int
	Finished int
	// Makespan is the latest completion time across the fleet.
	Makespan float64
	// Latencies holds submission-to-completion seconds for finished
	// jobs, in arrival order (migrated and restarted jobs measure from
	// their original arrival).
	Latencies []float64
	// Recovered counts finished jobs that survived at least one
	// checkpoint restart or cross-node migration; Failed those no
	// surviving capacity could hold; Lost is the invariant counter —
	// jobs in no terminal state after the fleet idles — pinned to zero
	// by the cluster tests.
	Recovered, Failed, Lost int
}

// Run drives the full fleet over an arrival schedule (ascending At)
// until every node is idle and every fault delivered, then returns the
// cluster accounting. The loop advances all nodes to the globally
// earliest pending event — arrival, completion or fault — drains
// buffered migrations, then dispatches the arrivals due at that time;
// nodes are always visited in fleet order, so the run is a pure
// function of (specs, seed, arrivals).
func (c *Cluster) Run(arrivals []Arrival) Result {
	next := 0
	for {
		t := math.Inf(1)
		if next < len(arrivals) {
			t = arrivals[next].At
		}
		for _, n := range c.Nodes {
			if at, ok := n.Sys.NextEventAt(); ok && at < t {
				t = at
			}
		}
		if math.IsInf(t, 1) {
			break
		}
		for _, n := range c.Nodes {
			n.Sys.AdvanceUntil(t)
		}
		c.placeMigrations(t)
		for next < len(arrivals) && arrivals[next].At <= t {
			c.dispatch(arrivals[next])
			next++
		}
	}
	return c.summarize()
}

// dispatch routes one arrival onto the fleet, or records it failed
// when no live node can hold its shape.
func (c *Cluster) dispatch(a Arrival) {
	rec := len(c.jobs)
	c.jobs = append(c.jobs, jobRecord{name: a.Name, submitAt: a.At, node: -1})
	node := c.bestNode(a.CPUs, a.MemGB, func(n *Node) float64 { return secondsOn(a, n) }, -1)
	if node < 0 {
		return
	}
	n := c.Nodes[node]
	block, ok := homeBlock(n, a.CPUs, a.MemGB)
	if !ok {
		return
	}
	id := n.Sys.Submit(superux.Job{
		Name:     a.Name,
		Block:    block,
		CPUs:     a.CPUs,
		MemGB:    a.MemGB,
		Seconds:  secondsOn(a, n),
		Priority: a.Priority,
	})
	c.jobs[rec].node = node
	c.jobs[rec].localID = id
	c.byJob[jobKey{node: node, localID: id}] = rec
}

// placeMigrations resubmits every buffered migration at time t: the
// job's checkpointed remaining work (restart overhead included) lands
// on the best surviving node, or the record fails fleet-wide if the
// last candidate died since acceptance. Placement order is acceptance
// order — itself deterministic because nodes advance in fleet order.
func (c *Cluster) placeMigrations(t float64) {
	for len(c.pending) > 0 {
		batch := c.pending
		c.pending = nil
		for _, p := range batch {
			rec := &c.jobs[p.record]
			node := c.bestNode(p.job.CPUs, p.job.MemGB, func(*Node) float64 { return p.job.Seconds }, rec.node)
			if node < 0 {
				rec.node = -1
				continue
			}
			n := c.Nodes[node]
			block, ok := homeBlock(n, p.job.CPUs, p.job.MemGB)
			if !ok {
				rec.node = -1
				continue
			}
			id := n.Sys.Submit(superux.Job{
				Name:     p.job.Name,
				Block:    block,
				CPUs:     p.job.CPUs,
				MemGB:    p.job.MemGB,
				Seconds:  p.job.Seconds,
				Priority: p.job.Priority,
			})
			rec.node = node
			rec.localID = id
			rec.migrations++
			c.byJob[jobKey{node: node, localID: id}] = p.record
		}
	}
}

// summarize folds the per-job records into the cluster accounting,
// walking records in arrival order (never a map).
func (c *Cluster) summarize() Result {
	res := Result{Jobs: len(c.jobs)}
	for i := range c.jobs {
		rec := &c.jobs[i]
		if rec.node < 0 {
			res.Failed++
			continue
		}
		j := c.Nodes[rec.node].Sys.Jobs[rec.localID]
		switch j.State {
		case superux.Done:
			res.Finished++
			res.Latencies = append(res.Latencies, j.FinishAt-rec.submitAt)
			if j.FinishAt > res.Makespan {
				res.Makespan = j.FinishAt
			}
			if j.Restarts > 0 || rec.migrations > 0 {
				res.Recovered++
			}
		case superux.Failed:
			res.Failed++
		default:
			res.Lost++
		}
	}
	return res
}
