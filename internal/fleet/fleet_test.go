package fleet

import (
	"strings"
	"testing"

	_ "sx4bench/internal/machine" // registry
)

func TestParseSpecExpandsAndOrders(t *testing.T) {
	nodes, err := ParseSpec("sx4-32x2,c90")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("want 3 nodes, got %d", len(nodes))
	}
	if nodes[0].Machine != "sx4-32" || nodes[1].Machine != "sx4-32" || nodes[2].Machine != "c90" {
		t.Fatalf("node order wrong: %+v", nodes)
	}
	if nodes[0] != nodes[1] {
		t.Fatalf("replicated nodes differ: %+v vs %+v", nodes[0], nodes[1])
	}
	if nodes[0].CPUs != 32 || nodes[2].CPUs != 16 {
		t.Fatalf("CPU counts wrong: sx4-32=%d c90=%d", nodes[0].CPUs, nodes[2].CPUs)
	}
	if nodes[0].PerCPUMFLOPS <= nodes[2].PerCPUMFLOPS {
		t.Fatalf("SX-4 per-CPU rate (%v) should exceed the C90's (%v)",
			nodes[0].PerCPUMFLOPS, nodes[2].PerCPUMFLOPS)
	}
	if nodes[0].Fingerprint == 0 || nodes[0].Fingerprint == nodes[2].Fingerprint {
		t.Fatal("node fingerprints missing or colliding")
	}
}

func TestParseSpecRejections(t *testing.T) {
	for _, spec := range []string{
		"",
		"sx4-32,,c90",
		"nosuchmachine",
		"sx4-32x0",
		"sx4-32x100000",
		"c90x65",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
	// Whitespace and case are forgiven the way the registry forgives
	// them.
	if _, err := ParseSpec(" SX4-32 , c90 "); err != nil {
		t.Errorf("ParseSpec with spaces rejected: %v", err)
	}
}

func canonicalTestConfig(t *testing.T, scenarios int) Config {
	t.Helper()
	nodes, err := ParseSpec("sx4-32x2,c90")
	if err != nil {
		t.Fatal(err)
	}
	return Config{Nodes: nodes, Mixes: CanonicalMixes(), Scenarios: scenarios}
}

func TestScenarioDerivationCoversTheProduct(t *testing.T) {
	cfg := canonicalTestConfig(t, 24)
	mixes := map[int]bool{}
	degradedPerMix := map[int]int{}
	seeds := map[int64]bool{}
	for i := 0; i < 24; i++ {
		sc := cfg.ScenarioAt(i)
		mixes[sc.Mix] = true
		if sc.Down >= 0 {
			degradedPerMix[sc.Mix]++
			if sc.Down >= len(cfg.Nodes) {
				t.Fatalf("scenario %d drops nonexistent node %d", i, sc.Down)
			}
		}
		if seeds[sc.FaultSeed] || seeds[sc.ArrivalSeed] || sc.FaultSeed == sc.ArrivalSeed {
			t.Fatalf("scenario %d reuses a seed", i)
		}
		seeds[sc.FaultSeed] = true
		seeds[sc.ArrivalSeed] = true
		again := cfg.ScenarioAt(i)
		if again != sc {
			t.Fatalf("ScenarioAt(%d) not deterministic", i)
		}
	}
	if len(mixes) != 3 {
		t.Fatalf("24 scenarios covered %d mixes, want 3", len(mixes))
	}
	for m := 0; m < 3; m++ {
		if degradedPerMix[m] == 0 {
			t.Errorf("mix %d never saw a degraded fleet in 24 scenarios", m)
		}
	}
}

func TestClusterRunDeterministicAndNothingLost(t *testing.T) {
	cfg := canonicalTestConfig(t, 12).withDefaults()
	for i := 0; i < 12; i++ {
		sc := cfg.ScenarioAt(i)
		a, b := cfg.simulate(sc), cfg.simulate(sc)
		if a != b {
			t.Fatalf("scenario %d not deterministic:\n%+v\n%+v", i, a, b)
		}
		if a.Lost != 0 {
			t.Fatalf("scenario %d lost %d jobs — the no-lost-jobs invariant broke", i, a.Lost)
		}
		if a.Jobs != a.Finished+a.Failed {
			t.Fatalf("scenario %d accounting leak: %d jobs != %d finished + %d failed",
				i, a.Jobs, a.Finished, a.Failed)
		}
		if a.Jobs == 0 {
			t.Fatalf("scenario %d generated no arrivals — the mix rates are miscalibrated", i)
		}
		if a.Finished > 0 && (a.P50 <= 0 || a.P99 < a.P95 || a.P95 < a.P50) {
			t.Fatalf("scenario %d percentiles disordered: p50=%v p95=%v p99=%v", i, a.P50, a.P95, a.P99)
		}
	}
}

func TestClusterMigratesAcrossNodes(t *testing.T) {
	// Across the canonical scenarios, cross-node recovery must
	// actually fire: with six fault events per node per week, some
	// scenario checkpoints a job off a failing block onto another node.
	cfg := canonicalTestConfig(t, 16).withDefaults()
	recovered := 0
	for i := 0; i < 16; i++ {
		recovered += cfg.simulate(cfg.ScenarioAt(i)).Recovered
	}
	if recovered == 0 {
		t.Fatal("no job recovered across 16 canonical scenarios — migration or checkpoint-requeue is dead")
	}
}

func TestMonteCarloWorkerInvariance(t *testing.T) {
	cfg := canonicalTestConfig(t, 24)
	var reports []Report
	for _, workers := range []int{1, 4, 8} {
		var e Engine // fresh memo per run: every variant simulates cold
		rep, err := e.MonteCarlo(cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	for i := 1; i < len(reports); i++ {
		if reports[i].Checksum != reports[0].Checksum {
			t.Fatalf("checksum differs across worker counts: %x vs %x",
				reports[i].Checksum, reports[0].Checksum)
		}
		if len(reports[i].Mixes) != len(reports[0].Mixes) {
			t.Fatal("mix summary shape differs across worker counts")
		}
		for m := range reports[i].Mixes {
			if reports[i].Mixes[m] != reports[0].Mixes[m] {
				t.Fatalf("mix %d summary differs across worker counts:\n%+v\n%+v",
					m, reports[i].Mixes[m], reports[0].Mixes[m])
			}
		}
	}
}

func TestEngineMemoServesRepeatQueries(t *testing.T) {
	cfg := canonicalTestConfig(t, 12)
	var e Engine
	first, err := e.MonteCarlo(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := e.Stats()
	if afterFirst.Misses == 0 || afterFirst.Hits != 0 {
		t.Fatalf("cold run stats wrong: %+v", afterFirst)
	}
	second, err := e.MonteCarlo(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	afterSecond := e.Stats()
	if afterSecond.Hits != uint64(cfg.Scenarios) {
		t.Fatalf("repeat run hit %d of %d scenarios", afterSecond.Hits, cfg.Scenarios)
	}
	if first.Checksum != second.Checksum {
		t.Fatal("memoized rerun changed the report checksum")
	}
	// A wider query over the same scenarios re-simulates only the new
	// tail.
	wider := cfg
	wider.Scenarios = 18
	if _, err := e.MonteCarlo(wider, 0); err != nil {
		t.Fatal(err)
	}
	final := e.Stats()
	if got, want := final.Misses, uint64(18); got != want {
		t.Fatalf("widened query missed %d scenarios total, want %d (12 cold + 6 new)", got, want)
	}
}

func TestConfigValidate(t *testing.T) {
	good := canonicalTestConfig(t, 4)
	for name, mutate := range map[string]func(*Config){
		"no nodes":       func(c *Config) { c.Nodes = nil },
		"no mixes":       func(c *Config) { c.Mixes = nil },
		"zero scenarios": func(c *Config) { c.Scenarios = 0 },
	} {
		bad := good
		mutate(&bad)
		var e Engine
		if _, err := e.MonteCarlo(bad, 1); err == nil {
			t.Errorf("%s accepted", name)
		} else if !strings.Contains(err.Error(), "fleet:") {
			t.Errorf("%s: error lacks package prefix: %v", name, err)
		}
	}
}
