package fleet

import (
	"testing"
	"testing/quick"

	"sx4bench/internal/fault"
	"sx4bench/internal/superux"
)

// nodeLastCompletion is a node's own makespan: the latest FinishAt over
// its completed jobs.
func nodeLastCompletion(sys *superux.System) float64 {
	last := 0.0
	for _, j := range sys.Jobs {
		if j.State == superux.Done && j.FinishAt > last {
			last = j.FinishAt
		}
	}
	return last
}

// TestQuickFleetMakespanBounds is the satellite quickcheck property:
// the fleet's makespan is the latest completion anywhere in the
// cluster, so it is never shorter than any single node's own makespan —
// in particular the healthiest node's. The same walk pins the
// no-lost-jobs invariant and the accounting identity on arbitrary
// seeded scenarios.
func TestQuickFleetMakespanBounds(t *testing.T) {
	base, err := ParseSpec("sx4-32,c90,j90")
	if err != nil {
		t.Fatal(err)
	}
	mixes := CanonicalMixes()
	f := func(seed int64) bool {
		r := newRand(seed)
		n := 2 + int(r.uniform()*2) // 2 or 3 nodes
		specs := base[:n]
		events := int(r.uniform() * 5) // 0..4 fault events per node
		horizon := DaySeconds
		cluster := NewCluster(specs, fault.NodeSeed(seed, 0), horizon, events)
		mix := mixes[int(r.uniform()*float64(len(mixes)))]
		res := cluster.Run(mix.Arrivals(fault.NodeSeed(seed, 1), horizon))

		if res.Lost != 0 {
			t.Logf("seed %d: %d jobs lost", seed, res.Lost)
			return false
		}
		if res.Jobs != res.Finished+res.Failed {
			t.Logf("seed %d: %d jobs != %d finished + %d failed", seed, res.Jobs, res.Finished, res.Failed)
			return false
		}
		if len(res.Latencies) != res.Finished {
			t.Logf("seed %d: %d latencies for %d finished jobs", seed, len(res.Latencies), res.Finished)
			return false
		}
		global := 0.0
		for _, node := range cluster.Nodes {
			if last := nodeLastCompletion(node.Sys); last > global {
				global = last
			}
		}
		if res.Makespan != global {
			t.Logf("seed %d: makespan %v != latest completion %v", seed, res.Makespan, global)
			return false
		}
		for i, node := range cluster.Nodes {
			if last := nodeLastCompletion(node.Sys); res.Makespan < last {
				t.Logf("seed %d: fleet makespan %v beats node %d's own %v", seed, res.Makespan, i, last)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
