package fleet

import (
	"fmt"
	"math"
	"sort"

	"sx4bench/internal/superux"
)

// Arrival is one job entering the system at a simulated time. It is
// the shape shared by the legacy PRODLOAD replay and the fleet engine:
// prodload expresses its four-job sequences as arrivals with fixed
// Seconds and Block bindings (replayed on one node byte-identically to
// the pre-fleet scheduler loop), while the generated mixes express
// work as WorkMFLOP and leave placement to the cluster dispatcher.
type Arrival struct {
	// At is the submission time in simulated seconds.
	At float64
	// Name labels the job.
	Name string
	// Block, when non-empty, binds the job to a named resource block —
	// the single-node replay path. Cluster-routed arrivals leave it
	// empty and the dispatcher picks node and block.
	Block string
	// CPUs and MemGB are the job's resource shape.
	CPUs  int
	MemGB float64
	// Seconds, when positive, is the job's fixed duration. Otherwise
	// the duration is WorkMFLOP converted at the chosen node's rate —
	// the heterogeneity hook.
	Seconds   float64
	WorkMFLOP float64
	// Priority follows superux ordering (higher first).
	Priority int
}

// Replay drives a single SUPER-UX system with a fixed arrival
// schedule: the system is advanced to each arrival's time, the job
// submitted, and the event loop drained after the last submission. For
// an all-At-zero schedule this is exactly the pre-fleet PRODLOAD loop
// — submissions in slice order at t=0, one Advance — which is what
// keeps the prodload golden byte-identical across the refactor.
func Replay(sys *superux.System, arrivals []Arrival) float64 {
	for _, a := range arrivals {
		if a.At > 0 {
			sys.AdvanceUntil(a.At)
		}
		sys.Submit(superux.Job{
			Name:     a.Name,
			Block:    a.Block,
			CPUs:     a.CPUs,
			MemGB:    a.MemGB,
			Seconds:  a.Seconds,
			Priority: a.Priority,
		})
	}
	return sys.Advance()
}

// JobClass is one tenant's job shape in a workload mix: PRODLOAD's
// fixed components (a T106 climate run, T42 runs, a HIPPI transfer)
// generalized to a weighted class with a work demand instead of a
// duration.
type JobClass struct {
	Name      string
	CPUs      int
	MemGB     float64
	WorkMFLOP float64
	// Weight is the class's relative draw frequency within its mix.
	Weight float64
}

// Pattern selects a mix's arrival process.
type Pattern int

const (
	// PatternSteady is a homogeneous Poisson process at PerHour.
	PatternSteady Pattern = iota
	// PatternBurst is a low-rate Poisson background plus a fixed-size
	// burst of submissions every simulated morning — the 09:00 queue
	// flood.
	PatternBurst
	// PatternDiurnal is a Poisson process whose rate swings
	// sinusoidally over each 24-hour day (thinning construction).
	PatternDiurnal
)

func (p Pattern) String() string {
	switch p {
	case PatternSteady:
		return "steady"
	case PatternBurst:
		return "burst"
	case PatternDiurnal:
		return "diurnal"
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// Mix is one multi-tenant workload: an arrival pattern over a set of
// weighted job classes.
type Mix struct {
	Name    string
	Pattern Pattern
	// PerHour is the mean arrival rate (the Poisson intensity; for
	// PatternBurst the background intensity).
	PerHour float64
	Classes []JobClass
}

// The burst and diurnal shape constants: a burst of BurstJobs lands
// BurstOffsetSeconds into each simulated day, spaced BurstSpacing
// apart; the diurnal rate swings ±DiurnalSwing around the mean.
const (
	DaySeconds         = 86400.0
	BurstJobs          = 12
	BurstOffsetSeconds = 9 * 3600.0
	BurstSpacing       = 120.0
	DiurnalSwing       = 0.9
)

// Arrivals generates the mix's deterministic arrival schedule over
// [0, horizon) seconds: a pure function of (mix, seed, horizon),
// identical across hosts, worker counts and runs. Draws are consumed
// from one SplitMix64 stream in a fixed order, then the schedule is
// stable-sorted by time and named, so the result never depends on
// generation order internals.
func (m Mix) Arrivals(seed int64, horizon float64) []Arrival {
	r := newRand(seed)
	var out []Arrival
	switch m.Pattern {
	case PatternBurst:
		out = m.poisson(r, horizon, m.PerHour)
		for day := 0.0; day < horizon; day += DaySeconds {
			for j := 0; j < BurstJobs; j++ {
				at := day + BurstOffsetSeconds + float64(j)*BurstSpacing
				if at >= horizon {
					break
				}
				out = append(out, m.classify(r, at))
			}
		}
	case PatternDiurnal:
		// Thinning: homogeneous candidates at the peak rate, each kept
		// with probability rate(t)/peak. Every candidate consumes its
		// acceptance draw whether kept or not, so the schedule is a
		// stable function of the stream.
		peak := m.PerHour * (1 + DiurnalSwing)
		t := 0.0
		for {
			t += r.exp(3600 / peak)
			if t >= horizon {
				break
			}
			rate := m.PerHour * (1 + DiurnalSwing*math.Sin(2*math.Pi*t/DaySeconds))
			if r.uniform()*peak < rate {
				out = append(out, m.classify(r, t))
			} else {
				r.uniform() // class draw burned: kept/dropped candidates cost the same
			}
		}
	default:
		out = m.poisson(r, horizon, m.PerHour)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].At < out[b].At })
	for i := range out {
		out[i].Name = fmt.Sprintf("%s-%s-%d", m.Name, out[i].Name, i)
	}
	return out
}

// poisson emits a homogeneous Poisson process at perHour over the
// horizon.
func (m Mix) poisson(r *rand64, horizon, perHour float64) []Arrival {
	var out []Arrival
	if perHour <= 0 {
		return out
	}
	t := 0.0
	for {
		t += r.exp(3600 / perHour)
		if t >= horizon {
			return out
		}
		out = append(out, m.classify(r, t))
	}
}

// classify draws one weighted job class and shapes an arrival at t.
// The job's final name is assigned after sorting; until then Name
// carries the class.
func (m Mix) classify(r *rand64, t float64) Arrival {
	total := 0.0
	for _, c := range m.Classes {
		total += c.Weight
	}
	draw := r.uniform() * total
	cls := m.Classes[len(m.Classes)-1]
	for _, c := range m.Classes {
		if draw < c.Weight {
			cls = c
			break
		}
		draw -= c.Weight
	}
	return Arrival{
		At:        t,
		Name:      cls.Name,
		CPUs:      cls.CPUs,
		MemGB:     cls.MemGB,
		WorkMFLOP: cls.WorkMFLOP,
	}
}

// CanonicalClasses is the fleet generalization of PRODLOAD's job
// components: the big spectral run, the pair-sized T42 runs, the HIPPI
// transfer and a small analysis job, with work demands sized so the
// flagship SX-4/32 clears the mix comfortably and slower comparators
// visibly queue.
func CanonicalClasses() []JobClass {
	return []JobClass{
		{Name: "t106", CPUs: 8, MemGB: 4, WorkMFLOP: 9.6e6, Weight: 3},
		{Name: "t42", CPUs: 2, MemGB: 1, WorkMFLOP: 1.2e6, Weight: 6},
		{Name: "hippi", CPUs: 1, MemGB: 0.5, WorkMFLOP: 1.2e5, Weight: 2},
		{Name: "analysis", CPUs: 4, MemGB: 2, WorkMFLOP: 2.4e6, Weight: 1},
	}
}

// CanonicalMixes returns the three canonical workload mixes the
// capacity artifact sweeps: steady, burst and diurnal tenants over the
// canonical classes.
func CanonicalMixes() []Mix {
	classes := CanonicalClasses()
	return []Mix{
		{Name: "steady", Pattern: PatternSteady, PerHour: 1.5, Classes: classes},
		{Name: "burst", Pattern: PatternBurst, PerHour: 0.5, Classes: classes},
		{Name: "diurnal", Pattern: PatternDiurnal, PerHour: 1.5, Classes: classes},
	}
}

// rand64 is a local SplitMix64 draw stream (the repo's standard seeded
// primitive; math/rand's global source is banned by the seededrand
// analyzer).
type rand64 struct{ state uint64 }

func newRand(seed int64) *rand64 {
	s := splitmix64(uint64(seed))
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return &rand64{state: s}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// uniform returns the next draw in [0, 1).
func (r *rand64) uniform() float64 {
	r.state += 0x9e3779b97f4a7c15
	return float64(splitmix64(r.state)>>11) / (1 << 53)
}

// exp returns an exponential draw with the given mean (inter-arrival
// gaps of a Poisson process).
func (r *rand64) exp(mean float64) float64 {
	return -mean * math.Log(1-r.uniform())
}
