package fleet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"sx4bench/internal/core"
	"sx4bench/internal/core/sched"
	"sx4bench/internal/fault"
	"sx4bench/internal/target"
)

// Canonical Monte Carlo parameters: a week of simulated traffic, six
// fault events per node per week, seeded with the paper's year.
const (
	WeekSeconds               = 7 * 24 * 3600.0
	DefaultSeed               = 1996
	DefaultFaultEventsPerNode = 6
	DefaultScenarios          = 100
)

// Config parameterizes a capacity Monte Carlo: a fleet, a set of
// workload mixes, and the scenario count. Scenario i is a pure
// function of (Config, i): its mix rotates through Mixes, its fault
// and arrival seeds derive from Seed by SplitMix64 stream jumps, and
// every fourth scenario runs a degraded fleet with one node removed —
// the fault-seeds × workload-mixes × degraded-fleets product the
// capacity question needs.
type Config struct {
	Nodes     []NodeSpec
	Mixes     []Mix
	Scenarios int
	// Seed is the fleet seed every scenario derives from.
	Seed int64
	// HorizonSeconds bounds arrivals and fault schedules; 0 means
	// WeekSeconds.
	HorizonSeconds float64
	// FaultEventsPerNode sizes each node's per-scenario fault plan;
	// negative means fault-free, 0 means the default.
	FaultEventsPerNode int
}

// withDefaults resolves the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.HorizonSeconds == 0 {
		c.HorizonSeconds = WeekSeconds
	}
	if c.FaultEventsPerNode == 0 {
		c.FaultEventsPerNode = DefaultFaultEventsPerNode
	}
	if c.FaultEventsPerNode < 0 {
		c.FaultEventsPerNode = 0
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// Validate rejects configurations the engine cannot run.
func (c Config) Validate() error {
	switch {
	case len(c.Nodes) == 0:
		return fmt.Errorf("fleet: config has no nodes")
	case len(c.Mixes) == 0:
		return fmt.Errorf("fleet: config has no workload mixes")
	case c.Scenarios <= 0:
		return fmt.Errorf("fleet: scenario count %d must be positive", c.Scenarios)
	case c.HorizonSeconds < 0 || math.IsNaN(c.HorizonSeconds) || math.IsInf(c.HorizonSeconds, 0):
		return fmt.Errorf("fleet: horizon must be finite and non-negative")
	}
	return nil
}

// Scenario is one resolved Monte Carlo draw.
type Scenario struct {
	Index int
	// Mix indexes Config.Mixes.
	Mix int
	// FaultSeed seeds the fleet's per-node fault plans; ArrivalSeed
	// the mix's arrival schedule.
	FaultSeed   int64
	ArrivalSeed int64
	// Down is the node index removed for a degraded-fleet scenario,
	// -1 for the full fleet.
	Down int
}

// ScenarioAt derives scenario i. Exported so tests and the capacity
// artifact can replay any single scenario by index.
func (c Config) ScenarioAt(i int) Scenario {
	c = c.withDefaults()
	sc := Scenario{
		Index:       i,
		Mix:         i % len(c.Mixes),
		FaultSeed:   fault.NodeSeed(c.Seed, 2*i),
		ArrivalSeed: fault.NodeSeed(c.Seed, 2*i+1),
		Down:        -1,
	}
	// Every fourth scenario plans against a degraded fleet: one node
	// gone before the week starts. 4 is coprime to the three canonical
	// mixes, so each mix sees degraded draws.
	if i%4 == 3 && len(c.Nodes) > 1 {
		sc.Down = (i / 4) % len(c.Nodes)
	}
	return sc
}

// ScenarioResult is one simulated scenario's outcome — a flat struct
// so the per-scenario memo can hold it by value.
type ScenarioResult struct {
	Mix      int
	Degraded bool
	Jobs     int
	Finished int
	// P50/P95/P99 are nearest-rank percentiles of finished-job latency
	// in seconds (core.Percentiles).
	P50, P95, P99 float64
	Makespan      float64
	Recovered     int
	Failed        int
	Lost          int
}

// simulate runs one scenario cold: build the (possibly degraded)
// fleet, derive per-node fault plans from the scenario's fault seed,
// generate the mix's arrivals, and drain the cluster.
func (c Config) simulate(sc Scenario) ScenarioResult {
	c = c.withDefaults()
	specs := c.Nodes
	if sc.Down >= 0 && sc.Down < len(specs) {
		specs = append(append([]NodeSpec(nil), specs[:sc.Down]...), specs[sc.Down+1:]...)
	}
	cluster := NewCluster(specs, sc.FaultSeed, c.HorizonSeconds, c.FaultEventsPerNode)
	arrivals := c.Mixes[sc.Mix].Arrivals(sc.ArrivalSeed, c.HorizonSeconds)
	res := cluster.Run(arrivals)
	ps := core.Percentiles(res.Latencies, 50, 95, 99)
	return ScenarioResult{
		Mix:       sc.Mix,
		Degraded:  sc.Down >= 0,
		Jobs:      res.Jobs,
		Finished:  res.Finished,
		P50:       ps[0],
		P95:       ps[1],
		P99:       ps[2],
		Makespan:  res.Makespan,
		Recovered: res.Recovered,
		Failed:    res.Failed,
		Lost:      res.Lost,
	}
}

// fingerprint content-addresses one scenario against the fleet and mix
// configuration: an FNV-1a fold of every input that can reach a result
// — node fingerprints and shapes, the mix definition, the horizon and
// the scenario seeds. Worker counts never enter.
func (c Config) fingerprint(sc Scenario) uint64 {
	c = c.withDefaults()
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte("fleet-scenario\x00"))
	for i, n := range c.Nodes {
		if i == sc.Down {
			continue
		}
		word(n.Fingerprint)
		word(uint64(n.CPUs))
		word(math.Float64bits(n.MemGB))
		word(math.Float64bits(n.PerCPUMFLOPS))
	}
	m := c.Mixes[sc.Mix]
	h.Write([]byte(m.Name))
	h.Write([]byte{0})
	word(uint64(m.Pattern))
	word(math.Float64bits(m.PerHour))
	for _, cl := range m.Classes {
		h.Write([]byte(cl.Name))
		h.Write([]byte{0})
		word(uint64(cl.CPUs))
		word(math.Float64bits(cl.MemGB))
		word(math.Float64bits(cl.WorkMFLOP))
		word(math.Float64bits(cl.Weight))
	}
	word(math.Float64bits(c.HorizonSeconds))
	word(uint64(c.FaultEventsPerNode))
	word(uint64(sc.FaultSeed))
	word(uint64(sc.ArrivalSeed))
	return h.Sum64()
}

// MixSummary aggregates one mix's scenarios. The latency columns are
// medians across scenarios of the per-scenario nearest-rank
// percentiles (core.Percentiles at both levels), so one pathological
// draw cannot swamp the column.
type MixSummary struct {
	Mix                     string
	Pattern                 string
	Scenarios, Degraded     int
	Jobs                    int64
	P50, P95, P99           float64
	MakespanP50             float64
	MakespanMax             float64
	Recovered, Failed, Lost int64
}

// Report is one Monte Carlo run's aggregate.
type Report struct {
	Scenarios int
	Jobs      int64
	Results   []ScenarioResult
	// Mixes summarizes per mix, in Config.Mixes order.
	Mixes []MixSummary
	// Checksum folds every scenario result in index order; equal
	// checksums across worker counts are the determinism witness the
	// capacity benchmark asserts.
	Checksum uint64
}

// Engine runs capacity Monte Carlos with a per-scenario memo: repeated
// queries over overlapping scenario sets (the sx4d capacity endpoint,
// repeated artifact renders) re-simulate nothing. The zero value is
// ready to use; the memo is safe for concurrent engines and callers.
type Engine struct {
	memo target.FPCache[ScenarioResult]
}

// Stats exposes the scenario-memo counters (the /v1/stats surface).
func (e *Engine) Stats() target.FPCacheStats { return e.memo.Stats() }

// MonteCarlo runs cfg.Scenarios scenarios across the worker pool (the
// repo convention: 0 = GOMAXPROCS, 1 = serial) and aggregates. Results
// are collected and folded in scenario-index order, so the Report —
// checksum included — is byte-identical for every worker count.
func (e *Engine) MonteCarlo(cfg Config, workers int) (Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	results := make([]ScenarioResult, cfg.Scenarios)
	// Scenarios are milliseconds each; batch them so the pool pays one
	// handoff per span, not per scenario.
	sched.ForEachGrain(workers, cfg.Scenarios, 8, func(i int) error {
		sc := cfg.ScenarioAt(i)
		results[i] = e.memo.LoadOrStore(cfg.fingerprint(sc), func() ScenarioResult {
			return cfg.simulate(sc)
		})
		return nil
	})
	return aggregate(cfg, results), nil
}

// aggregate folds scenario results (index order) into the report.
func aggregate(cfg Config, results []ScenarioResult) Report {
	rep := Report{Scenarios: len(results), Results: results}
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	perMix := make([][]ScenarioResult, len(cfg.Mixes))
	for _, r := range results {
		rep.Jobs += int64(r.Jobs)
		perMix[r.Mix] = append(perMix[r.Mix], r)
		word(uint64(r.Mix))
		word(uint64(r.Jobs))
		word(uint64(r.Finished))
		word(math.Float64bits(r.P50))
		word(math.Float64bits(r.P95))
		word(math.Float64bits(r.P99))
		word(math.Float64bits(r.Makespan))
		word(uint64(r.Recovered))
		word(uint64(r.Failed))
		word(uint64(r.Lost))
	}
	for mi, mix := range cfg.Mixes {
		rs := perMix[mi]
		ms := MixSummary{Mix: mix.Name, Pattern: mix.Pattern.String(), Scenarios: len(rs)}
		if len(rs) == 0 {
			rep.Mixes = append(rep.Mixes, ms)
			continue
		}
		p50s := make([]float64, 0, len(rs))
		p95s := make([]float64, 0, len(rs))
		p99s := make([]float64, 0, len(rs))
		makespans := make([]float64, 0, len(rs))
		for _, r := range rs {
			ms.Jobs += int64(r.Jobs)
			ms.Recovered += int64(r.Recovered)
			ms.Failed += int64(r.Failed)
			ms.Lost += int64(r.Lost)
			if r.Degraded {
				ms.Degraded++
			}
			p50s = append(p50s, r.P50)
			p95s = append(p95s, r.P95)
			p99s = append(p99s, r.P99)
			makespans = append(makespans, r.Makespan)
			if r.Makespan > ms.MakespanMax {
				ms.MakespanMax = r.Makespan
			}
		}
		ms.P50 = core.Percentiles(p50s, 50)[0]
		ms.P95 = core.Percentiles(p95s, 50)[0]
		ms.P99 = core.Percentiles(p99s, 50)[0]
		ms.MakespanP50 = core.Percentiles(makespans, 50)[0]
		rep.Mixes = append(rep.Mixes, ms)
	}
	rep.Checksum = h.Sum64()
	return rep
}
