package fleet

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestFleetImportAllowlist pins the package's layering from the inside:
// the fleet engine may consume the scheduler model (superux), fault
// plans, the target registry's spec surface and core utilities — never
// a concrete machine model (internal/machine) or the SX-4 engine
// (internal/sx4). The layering analyzer enforces the same rule
// repo-wide; this test makes the full allowlist explicit so an
// accidental new dependency fails loudly here first.
func TestFleetImportAllowlist(t *testing.T) {
	allowed := map[string]bool{
		"sx4bench/internal/core":       true,
		"sx4bench/internal/core/sched": true,
		"sx4bench/internal/fault":      true,
		"sx4bench/internal/superux":    true,
		"sx4bench/internal/target":     true,
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(".", name), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			switch {
			case strings.HasPrefix(path, "sx4bench/"):
				if !allowed[path] {
					t.Errorf("%s imports %q, outside the fleet allowlist — the capacity layer consumes spec sheets, not engines", name, path)
				}
			case strings.Contains(path, "."):
				t.Errorf("%s imports %q: external dependencies are banned", name, path)
			}
		}
	}
}
