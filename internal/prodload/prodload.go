// Package prodload implements the PRODLOAD benchmark: overall system
// performance under a simulated production load. A "job" is the HIPPI
// benchmark plus three concurrent CCM2 runs (one 3-day simulation at
// T106 and two 20-day simulations at T42); a job completes when all
// components finish. Four tests are measured:
//
//	test 1: one sequence of four jobs run one after another;
//	test 2: two such sequences running concurrently;
//	test 3: four sequences running concurrently;
//	test 4: two CCM2 2-day runs at T170 executing concurrently.
//
// The measurement is the wall-clock time from the first job's start to
// the last job's completion of each test; the paper's SX-4/32 finished
// the whole benchmark in 93 minutes 28 seconds (9.2 ns clock).
//
// Sequencing runs on the superux scheduler (FIFO resource blocks, one
// per sequence); component times come from the CCM2 run model with the
// node fully active (cross-job interference included).
package prodload

import (
	"fmt"

	"sx4bench/internal/ccm2"
	"sx4bench/internal/fleet"
	"sx4bench/internal/iobench"
	"sx4bench/internal/superux"
	"sx4bench/internal/sx4/iop"
	"sx4bench/internal/target"
)

// HIPPIVolumeBytes is the data moved by the HIPPI component of a job.
const HIPPIVolumeBytes = 10 << 30

// JobTimes is the component breakdown of one PRODLOAD job.
type JobTimes struct {
	T106Seconds  float64
	T42Seconds   float64
	HIPPISeconds float64
}

// Max returns the job's completion time (components run concurrently).
func (j JobTimes) Max() float64 {
	m := j.T106Seconds
	if j.T42Seconds > m {
		m = j.T42Seconds
	}
	if j.HIPPISeconds > m {
		m = j.HIPPISeconds
	}
	return m
}

// jobComponents sizes one job inside a sequence that owns blockCPUs
// processors: the T106 run gets the large share, the two T42 runs a
// quarter each, and the HIPPI test one CPU.
func jobComponents(m target.Target, blockCPUs int) JobTimes {
	t42CPUs := blockCPUs / 4
	if t42CPUs < 1 {
		t42CPUs = 1
	}
	t106CPUs := blockCPUs - 2*t42CPUs - 1
	if t106CPUs < 1 {
		t106CPUs = 1
	}
	active := m.Spec().CPUs // the node is fully loaded during PRODLOAD

	t106, _ := ccm2.ResolutionByName("T106L18")
	t42, _ := ccm2.ResolutionByName("T42L18")
	return JobTimes{
		T106Seconds:  ccm2.SimDays(m, t106, 3, t106CPUs, active),
		T42Seconds:   ccm2.SimDays(m, t42, 20, t42CPUs, active),
		HIPPISeconds: iobench.HIPPITestSeconds(iop.New(), HIPPIVolumeBytes),
	}
}

// Result is the PRODLOAD outcome.
type Result struct {
	Test1, Test2, Test3, Test4 float64
	TotalSeconds               float64
}

// TotalMinutes returns the benchmark total in minutes.
func (r Result) TotalMinutes() float64 { return r.TotalSeconds / 60 }

// sequenceBlockCPUs is each sequence's processor allocation: an even
// split of the node, floored at one CPU so the uniprocessor
// comparators time-share.
func sequenceBlockCPUs(m target.Target, sequences int) int {
	blockCPUs := m.Spec().CPUs / sequences
	if blockCPUs < 1 {
		blockCPUs = 1
	}
	return blockCPUs
}

// SequencedArrivals expresses a sequenced PRODLOAD test as a fleet
// arrival schedule: `sequences` concurrent sequences of four jobs,
// every job submitted at t=0 bound to its sequence's resource block,
// occupying the whole block (serializing the sequence) for the slowest
// component's duration. This is the benchmark's arrival process split
// from its replay — the legacy golden path below and the fleet
// capacity engine consume the same schedule shape.
func SequencedArrivals(m target.Target, sequences int) []fleet.Arrival {
	blockCPUs := sequenceBlockCPUs(m, sequences)
	jt := jobComponents(m, blockCPUs)
	arrivals := make([]fleet.Arrival, 0, 4*sequences)
	for s := 0; s < sequences; s++ {
		for j := 0; j < 4; j++ {
			arrivals = append(arrivals, fleet.Arrival{
				Name:    fmt.Sprintf("seq%d-job%d", s, j),
				Block:   fmt.Sprintf("seq%d", s),
				CPUs:    blockCPUs,
				MemGB:   8.0 / float64(sequences) * 0.9,
				Seconds: jt.Max(),
			})
		}
	}
	return arrivals
}

// SequencedBlocks is the matching scheduler geometry: one FIFO
// resource block per sequence.
func SequencedBlocks(m target.Target, sequences int) []superux.ResourceBlock {
	blockCPUs := sequenceBlockCPUs(m, sequences)
	blocks := make([]superux.ResourceBlock, 0, sequences)
	for s := 0; s < sequences; s++ {
		blocks = append(blocks, superux.ResourceBlock{
			Name:    fmt.Sprintf("seq%d", s),
			MaxCPUs: blockCPUs,
			MemGB:   8.0 / float64(sequences),
			Policy:  superux.FIFO,
		})
	}
	return blocks
}

// runSequencedTest replays the sequenced arrival schedule on a fresh
// superux system and returns the makespan. All arrivals land at t=0,
// so the replay is submission-order identical to the pre-split
// scheduler loop — the prodload golden does not move.
func runSequencedTest(m target.Target, sequences int) float64 {
	sys := superux.NewSystem(SequencedBlocks(m, sequences)...)
	return fleet.Replay(sys, SequencedArrivals(m, sequences))
}

// runTest4 models two concurrent 2-day T170 runs on half the node each.
func runTest4(m target.Target) float64 {
	t170, _ := ccm2.ResolutionByName("T170L18")
	half := m.Spec().CPUs / 2
	if half < 1 {
		half = 1
	}
	return ccm2.SimDays(m, t170, 2, half, m.Spec().CPUs)
}

// results memoizes the benchmark per machine configuration: the
// outcome is a pure function of the machine (the scheduler is
// deterministic and the component times come from the memoized CCM2
// model), and the drivers re-run it per cross-machine column, report
// section and resilient attempt.
var results target.FPCache[Result]

// Run executes the full PRODLOAD benchmark on the machine.
func Run(m target.Target) Result {
	return results.LoadOrStore(m.Fingerprint(), func() Result { return run(m) })
}

func run(m target.Target) Result {
	r := Result{
		Test1: runSequencedTest(m, 1),
		Test2: runSequencedTest(m, 2),
		Test3: runSequencedTest(m, 4),
		Test4: runTest4(m),
	}
	r.TotalSeconds = r.Test1 + r.Test2 + r.Test3 + r.Test4
	return r
}

// Components exposes the per-job component times for reporting.
func Components(m target.Target, sequences int) JobTimes {
	blockCPUs := m.Spec().CPUs / sequences
	if blockCPUs < 1 {
		blockCPUs = 1
	}
	return jobComponents(m, blockCPUs)
}
