package prodload

import (
	"fmt"
	"testing"

	"sx4bench/internal/fleet"
	"sx4bench/internal/superux"
	"sx4bench/internal/sx4"
)

func bench() *sx4.Machine { return sx4.New(sx4.Benchmarked()) }

func TestPaperTotalAnchor(t *testing.T) {
	// Paper: the SX-4/32 completed PRODLOAD in 93 minutes 28 seconds.
	r := Run(bench())
	paper := 93*60 + 28.0
	lo, hi := 0.8*paper, 1.2*paper
	if r.TotalSeconds < lo || r.TotalSeconds > hi {
		t.Errorf("PRODLOAD total = %.0f s (%.1f min), want within [%.0f, %.0f] (paper %.0f)",
			r.TotalSeconds, r.TotalMinutes(), lo, hi, paper)
	}
}

func TestTestsOrderedByLoad(t *testing.T) {
	// More concurrent sequences mean fewer CPUs per job: test 3 takes
	// longer than test 2, which takes longer than test 1.
	r := Run(bench())
	if !(r.Test3 > r.Test2 && r.Test2 > r.Test1) {
		t.Errorf("test times not ordered: t1=%.0f t2=%.0f t3=%.0f", r.Test1, r.Test2, r.Test3)
	}
	if r.Test4 <= 0 {
		t.Errorf("test 4 = %v", r.Test4)
	}
}

func TestSharingOverheadModest(t *testing.T) {
	// Test 3 completes 16 jobs where test 1 completes 4: the machine
	// absorbs 4x the concurrent load with only a modest increase in
	// CPU-seconds per job (packing + interference overhead), the
	// "little degradation under load" the paper concludes.
	r := Run(bench())
	perJob1 := r.Test1 * 32 / 4  // CPU-seconds per job, test 1
	perJob3 := r.Test3 * 32 / 16 // CPU-seconds per job, test 3
	if perJob3 > 1.4*perJob1 {
		t.Errorf("per-job cost grew from %.0f to %.0f CPU-seconds (>40%%)", perJob1, perJob3)
	}
	if r.Test3 >= 16.0/4*r.Test1*1.5 {
		t.Errorf("t3=%.0f disproportionate to t1=%.0f", r.Test3, r.Test1)
	}
}

func TestJobComponents(t *testing.T) {
	jt := Components(bench(), 1)
	if jt.T106Seconds <= 0 || jt.T42Seconds <= 0 || jt.HIPPISeconds <= 0 {
		t.Fatalf("non-positive component: %+v", jt)
	}
	// With a 32-CPU block the 3-day T106 run dominates the job.
	if jt.Max() != jt.T106Seconds {
		t.Errorf("expected T106 to dominate the job: %+v", jt)
	}
	// A job is minutes, not hours.
	if jt.Max() < 60 || jt.Max() > 1800 {
		t.Errorf("job time = %.0f s, want minutes-scale", jt.Max())
	}
}

func TestSequencesScaleJobTime(t *testing.T) {
	one := Components(bench(), 1)
	four := Components(bench(), 4)
	if four.T106Seconds <= one.T106Seconds {
		t.Error("jobs in quarter-node sequences should run slower")
	}
	// HIPPI time is CPU-allocation independent.
	if four.HIPPISeconds != one.HIPPISeconds {
		t.Error("HIPPI component should not depend on the CPU split")
	}
}

func TestSequencedMakespanIsFourJobs(t *testing.T) {
	// In each sequenced test the makespan equals 4 consecutive jobs.
	m := bench()
	jt := Components(m, 2)
	got := runSequencedTest(m, 2)
	want := 4 * jt.Max()
	if diff := got - want; diff < -1e-6 || diff > 1e-6 {
		t.Errorf("2-sequence makespan = %v, want %v (4 serial jobs)", got, want)
	}
}

func TestSequencedArrivalsMatchLegacySchedule(t *testing.T) {
	// The split arrival process must be the pre-refactor submission
	// loop verbatim: 4 jobs per sequence, submission order (s, j), all
	// at t=0, bound to their sequence block, sized to the slowest
	// component. This is what keeps the prodload golden frozen.
	m := bench()
	for _, sequences := range []int{1, 2, 4} {
		arrivals := SequencedArrivals(m, sequences)
		if len(arrivals) != 4*sequences {
			t.Fatalf("%d sequences: %d arrivals, want %d", sequences, len(arrivals), 4*sequences)
		}
		jt := Components(m, sequences)
		for i, a := range arrivals {
			s, j := i/4, i%4
			if a.At != 0 {
				t.Errorf("arrival %d at %v, want 0", i, a.At)
			}
			if want := fmt.Sprintf("seq%d-job%d", s, j); a.Name != want {
				t.Errorf("arrival %d name %q, want %q", i, a.Name, want)
			}
			if want := fmt.Sprintf("seq%d", s); a.Block != want {
				t.Errorf("arrival %d block %q, want %q", i, a.Block, want)
			}
			if a.Seconds != jt.Max() {
				t.Errorf("arrival %d duration %v, want %v", i, a.Seconds, jt.Max())
			}
		}
		blocks := SequencedBlocks(m, sequences)
		if len(blocks) != sequences {
			t.Fatalf("%d sequences: %d blocks", sequences, len(blocks))
		}
		// Replaying the schedule on the declared geometry is exactly the
		// sequenced test.
		sys := superux.NewSystem(blocks...)
		if got, want := fleet.Replay(sys, arrivals), runSequencedTest(m, sequences); got != want {
			t.Errorf("%d sequences: replay makespan %v != test makespan %v", sequences, got, want)
		}
	}
}
