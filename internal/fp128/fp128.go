// Package fp128 emulates the SX-4's 128-bit extended-precision floating
// point format (Section 2: "IEEE 754 support includes basic 32 and 64
// bit, and extended precision 128 bit word sizes") as double-double
// arithmetic: an unevaluated sum of two float64s giving ~106 bits of
// significand. The classic error-free transformations (Knuth's
// two-sum, Dekker's two-product via FMA) make the operations exact at
// that precision.
package fp128

import (
	"fmt"
	"math"
)

// X128 is a double-double value hi+lo with |lo| <= ulp(hi)/2.
type X128 struct {
	Hi, Lo float64
}

// FromFloat64 widens a float64.
func FromFloat64(x float64) X128 { return X128{Hi: x} }

// Float64 narrows to the nearest float64.
func (x X128) Float64() float64 { return x.Hi + x.Lo }

// twoSum returns s, e with s = fl(a+b) and a+b = s+e exactly.
func twoSum(a, b float64) (s, e float64) {
	s = a + b
	bb := s - a
	e = (a - (s - bb)) + (b - bb)
	return s, e
}

// quickTwoSum requires |a| >= |b|.
func quickTwoSum(a, b float64) (s, e float64) {
	s = a + b
	e = b - (s - a)
	return s, e
}

// twoProd returns p, e with p = fl(a*b) and a*b = p+e exactly (FMA).
func twoProd(a, b float64) (p, e float64) {
	p = a * b
	e = math.FMA(a, b, -p)
	return p, e
}

// Add returns x + y.
func (x X128) Add(y X128) X128 {
	s, e := twoSum(x.Hi, y.Hi)
	e += x.Lo + y.Lo
	hi, lo := quickTwoSum(s, e)
	return X128{hi, lo}
}

// Sub returns x - y.
func (x X128) Sub(y X128) X128 { return x.Add(y.Neg()) }

// Neg returns -x.
func (x X128) Neg() X128 { return X128{-x.Hi, -x.Lo} }

// Mul returns x * y.
func (x X128) Mul(y X128) X128 {
	p, e := twoProd(x.Hi, y.Hi)
	e += x.Hi*y.Lo + x.Lo*y.Hi
	hi, lo := quickTwoSum(p, e)
	return X128{hi, lo}
}

// Div returns x / y by Newton refinement of the float64 quotient.
func (x X128) Div(y X128) X128 {
	q1 := x.Hi / y.Hi
	// r = x - q1*y, computed in double-double.
	r := x.Sub(FromFloat64(q1).Mul(y))
	q2 := r.Float64() / y.Hi
	r2 := r.Sub(FromFloat64(q2).Mul(y))
	q3 := r2.Float64() / y.Hi
	hi, lo := quickTwoSum(q1, q2)
	return X128{hi, lo}.Add(FromFloat64(q3))
}

// Sqrt returns the square root by Newton iteration.
func (x X128) Sqrt() X128 {
	if x.Hi < 0 {
		return X128{math.NaN(), 0}
	}
	if x.Hi == 0 {
		return X128{}
	}
	// y0 from hardware, one double-double Newton step:
	// y = y0 + (x - y0²) / (2 y0).
	y0 := math.Sqrt(x.Hi)
	y := FromFloat64(y0)
	diff := x.Sub(y.Mul(y))
	corr := diff.Div(FromFloat64(2 * y0))
	return y.Add(corr)
}

// Abs returns |x|.
func (x X128) Abs() X128 {
	if x.Hi < 0 || (x.Hi == 0 && x.Lo < 0) {
		return x.Neg()
	}
	return x
}

// Cmp returns -1, 0, +1 comparing x and y.
func (x X128) Cmp(y X128) int {
	d := x.Sub(y)
	switch {
	case d.Hi < 0 || (d.Hi == 0 && d.Lo < 0):
		return -1
	case d.Hi > 0 || (d.Hi == 0 && d.Lo > 0):
		return 1
	}
	return 0
}

// String formats the value.
func (x X128) String() string { return fmt.Sprintf("%.17g+%.17g", x.Hi, x.Lo) }

// Sum accumulates a float64 slice in extended precision — the use case
// the hardware format served: global diagnostics sums over millions of
// grid points without losing the small contributions.
func Sum(xs []float64) X128 {
	var acc X128
	for _, v := range xs {
		acc = acc.Add(FromFloat64(v))
	}
	return acc
}

// Dot computes an extended-precision dot product.
func Dot(a, b []float64) X128 {
	if len(a) != len(b) {
		panic("fp128: length mismatch")
	}
	var acc X128
	for i := range a {
		acc = acc.Add(FromFloat64(a[i]).Mul(FromFloat64(b[i])))
	}
	return acc
}

// Eps is the unit roundoff of the format (~2^-106).
const Eps = 1.232595164407831e-32
