package fp128

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// toBig converts an X128 to a big.Float for reference comparisons.
func toBig(x X128) *big.Float {
	f := new(big.Float).SetPrec(200).SetFloat64(x.Hi)
	return f.Add(f, new(big.Float).SetPrec(200).SetFloat64(x.Lo))
}

// relErr returns |got-want|/|want| using 200-bit reference arithmetic.
func relErr(got X128, want *big.Float) float64 {
	diff := new(big.Float).SetPrec(200).Sub(toBig(got), want)
	if want.Sign() == 0 {
		d, _ := diff.Float64()
		return math.Abs(d)
	}
	diff.Quo(diff, new(big.Float).Abs(want))
	d, _ := diff.Float64()
	return math.Abs(d)
}

func TestAddExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
		b := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
		got := FromFloat64(a).Add(FromFloat64(b))
		want := new(big.Float).SetPrec(200).SetFloat64(a)
		want.Add(want, new(big.Float).SetPrec(200).SetFloat64(b))
		if e := relErr(got, want); e > 4*Eps {
			t.Fatalf("add(%v,%v) error %g", a, b, e)
		}
	}
}

func TestMulExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		got := FromFloat64(a).Mul(FromFloat64(b))
		want := new(big.Float).SetPrec(200).SetFloat64(a)
		want.Mul(want, new(big.Float).SetPrec(200).SetFloat64(b))
		if e := relErr(got, want); e > 4*Eps {
			t.Fatalf("mul(%v,%v) error %g", a, b, e)
		}
	}
}

func TestDivAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		if math.Abs(b) < 1e-6 {
			continue
		}
		got := FromFloat64(a).Div(FromFloat64(b))
		want := new(big.Float).SetPrec(200).SetFloat64(a)
		want.Quo(want, new(big.Float).SetPrec(200).SetFloat64(b))
		if e := relErr(got, want); e > 16*Eps {
			t.Fatalf("div(%v,%v) error %g", a, b, e)
		}
	}
}

func TestSqrtAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		a := math.Abs(rng.NormFloat64()) * math.Pow(10, float64(rng.Intn(12)-6))
		got := FromFloat64(a).Sqrt()
		want := new(big.Float).SetPrec(200).SetFloat64(a)
		want.Sqrt(want)
		if e := relErr(got, want); e > 16*Eps {
			t.Fatalf("sqrt(%v) error %g", a, e)
		}
	}
	if !math.IsNaN(FromFloat64(-1).Sqrt().Hi) {
		t.Error("sqrt(-1) != NaN")
	}
	if FromFloat64(0).Sqrt() != (X128{}) {
		t.Error("sqrt(0) != 0")
	}
}

func TestBeatsFloat64OnCancellation(t *testing.T) {
	// (1 + 1e-20) - 1 vanishes in float64 but not in the 128-bit format.
	one := FromFloat64(1)
	tiny := FromFloat64(1e-20)
	d := one.Add(tiny).Sub(one)
	if d.Float64() == 0 {
		t.Fatal("128-bit format lost a 1e-20 increment")
	}
	if math.Abs(d.Float64()-1e-20) > 1e-30 {
		t.Errorf("residual %g, want 1e-20", d.Float64())
	}
	// Control in float64 (variables defeat exact constant folding).
	fOne, fTiny := 1.0, 1e-20
	if (fOne+fTiny)-fOne != 0 {
		t.Error("float64 control failed: host arithmetic too precise?")
	}
}

func TestSumBeatsNaiveAccumulation(t *testing.T) {
	// The diagnostics use case: many tiny values after one big one.
	n := 1_000_000
	xs := make([]float64, n+1)
	xs[0] = 1e16
	for i := 1; i <= n; i++ {
		xs[i] = 1.0
	}
	var naive float64
	for _, v := range xs {
		naive += v
	}
	ext := Sum(xs).Float64()
	want := 1e16 + float64(n)
	if math.Abs(ext-want) > 1 {
		t.Errorf("extended sum %v, want %v", ext, want)
	}
	if math.Abs(naive-want) < math.Abs(ext-want) {
		t.Error("naive accumulation beat extended precision; test premise broken")
	}
}

func TestDot(t *testing.T) {
	a := []float64{1e8, 1, -1e8}
	b := []float64{1e8, 1, 1e8}
	// 1e16 + 1 - 1e16 = 1: float64 loses the 1.
	if got := Dot(a, b).Float64(); got != 1 {
		t.Errorf("extended dot = %v, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestCmpAndAbs(t *testing.T) {
	a := FromFloat64(2)
	b := FromFloat64(3)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Error("Cmp wrong")
	}
	// Equal hi, differing lo.
	x := X128{1, 1e-25}
	y := X128{1, 2e-25}
	if x.Cmp(y) != -1 {
		t.Error("Cmp ignores the low word")
	}
	if FromFloat64(-5).Abs().Float64() != 5 {
		t.Error("Abs wrong")
	}
	if (X128{0, -1e-30}).Abs().Lo <= 0 {
		t.Error("Abs ignores low-word sign at hi==0")
	}
}

func TestQuickFieldAxioms(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) ||
			math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(c, 0) ||
			math.Abs(a) > 1e100 || math.Abs(b) > 1e100 || math.Abs(c) > 1e100 {
			return true
		}
		A, B, C := FromFloat64(a), FromFloat64(b), FromFloat64(c)
		// Commutativity is exact.
		if A.Add(B) != B.Add(A) || A.Mul(B) != B.Mul(A) {
			return false
		}
		// a + b - b recovers a exactly at double-double precision when
		// magnitudes are comparable.
		if math.Abs(a) < 1e50 && math.Abs(b) < 1e50 {
			r := A.Add(B).Sub(B)
			diff := r.Sub(A).Abs().Float64()
			scale := math.Max(math.Abs(a), math.Abs(b))
			if diff > 1e-30*scale {
				return false
			}
		}
		_ = C
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if FromFloat64(1.5).String() == "" {
		t.Error("empty String")
	}
}
