// Package stream implements McCalpin's STREAM benchmark (COPY, SCALE,
// ADD, TRIAD): four long-vector, unit-stride operations sized to defeat
// data reuse, each measured at a single fixed array size. Section 3.4
// of the paper contrasts this with the NCAR memory kernels, which sweep
// array sizes at constant data volume and also probe irregular access;
// this package provides both the host reference loops and the machine
// traces so that contrast can be reproduced.
package stream

import (
	"fmt"

	"sx4bench/internal/sx4/prog"
	"sx4bench/internal/target"
)

// Kernel names, in benchmark order.
var Kernels = []string{"COPY", "SCALE", "ADD", "TRIAD"}

// DefaultN is the classic STREAM array length (big enough to exceed
// any 1996 cache).
const DefaultN = 2_000_000

// bytesMoved returns the STREAM byte-counting convention per kernel.
func bytesMoved(kernel string, n int) int64 {
	switch kernel {
	case "COPY", "SCALE":
		return 16 * int64(n)
	case "ADD", "TRIAD":
		return 24 * int64(n)
	}
	panic(fmt.Sprintf("stream: unknown kernel %q", kernel))
}

// Host executes a kernel on real arrays and returns the result slice.
func Host(kernel string, a, b, c []float64, scalar float64) []float64 {
	n := len(a)
	switch kernel {
	case "COPY":
		for i := 0; i < n; i++ {
			c[i] = a[i]
		}
		return c
	case "SCALE":
		for i := 0; i < n; i++ {
			b[i] = scalar * c[i]
		}
		return b
	case "ADD":
		for i := 0; i < n; i++ {
			c[i] = a[i] + b[i]
		}
		return c
	case "TRIAD":
		for i := 0; i < n; i++ {
			a[i] = b[i] + scalar*c[i]
		}
		return a
	}
	panic(fmt.Sprintf("stream: unknown kernel %q", kernel))
}

// Trace returns the machine trace of a kernel at length n.
func Trace(kernel string, n int) prog.Program {
	var body []prog.Op
	switch kernel {
	case "COPY":
		body = []prog.Op{
			{Class: prog.VLoad, VL: n, Stride: 1},
			{Class: prog.VStore, VL: n, Stride: 1},
		}
	case "SCALE":
		body = []prog.Op{
			{Class: prog.VLoad, VL: n, Stride: 1},
			{Class: prog.VMul, VL: n},
			{Class: prog.VStore, VL: n, Stride: 1},
		}
	case "ADD":
		body = []prog.Op{
			{Class: prog.VLoad, VL: n, Stride: 1},
			{Class: prog.VLoad, VL: n, Stride: 1},
			{Class: prog.VAdd, VL: n},
			{Class: prog.VStore, VL: n, Stride: 1},
		}
	case "TRIAD":
		body = []prog.Op{
			{Class: prog.VLoad, VL: n, Stride: 1},
			{Class: prog.VLoad, VL: n, Stride: 1},
			{Class: prog.VMul, VL: n},
			{Class: prog.VAdd, VL: n},
			{Class: prog.VStore, VL: n, Stride: 1},
		}
	default:
		panic(fmt.Sprintf("stream: unknown kernel %q", kernel))
	}
	return prog.Simple("STREAM-"+kernel, 1, body...)
}

// Result is one kernel's measurement.
type Result struct {
	Kernel string
	MBps   float64
}

// Run measures all four kernels on a machine at the default size.
func Run(m target.Target) []Result {
	out := make([]Result, 0, 4)
	for _, k := range Kernels {
		r := m.Run(Trace(k, DefaultN), target.RunOpts{Procs: 1})
		out = append(out, Result{Kernel: k, MBps: float64(bytesMoved(k, DefaultN)) / r.Seconds / 1e6})
	}
	return out
}
