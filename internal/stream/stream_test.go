package stream

import (
	"testing"

	"sx4bench/internal/sx4"
)

func TestHostSemantics(t *testing.T) {
	n := 100
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
	}
	got := Host("COPY", a, b, c, 3)
	for i := range got {
		if got[i] != a[i] {
			t.Fatal("COPY wrong")
		}
	}
	got = Host("SCALE", a, b, c, 3)
	for i := range got {
		if got[i] != 3*c[i] {
			t.Fatal("SCALE wrong")
		}
	}
	got = Host("ADD", a, b, c, 3)
	for i := range got {
		if got[i] != a[i]+b[i] {
			t.Fatal("ADD wrong")
		}
	}
	a2 := make([]float64, n)
	copy(a2, a)
	got = Host("TRIAD", a2, b, c, 3)
	for i := range got {
		if got[i] != b[i]+3*c[i] {
			t.Fatal("TRIAD wrong")
		}
	}
}

func TestUnknownKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown kernel did not panic")
		}
	}()
	Host("DAXPY", nil, nil, nil, 0)
}

func TestRunOnSX4(t *testing.T) {
	m := sx4.New(sx4.BenchmarkedSingleCPU())
	rs := Run(m)
	if len(rs) != 4 {
		t.Fatalf("%d results", len(rs))
	}
	rates := map[string]float64{}
	for _, r := range rs {
		rates[r.Kernel] = r.MBps
		if r.MBps < 1000 {
			t.Errorf("%s = %.0f MB/s; an SX-4 CPU should stream GB/s", r.Kernel, r.MBps)
		}
	}
	// COPY moves 16 B per iteration through a 2-op loop; TRIAD moves
	// 24 B per 3 memory ops: same port-limited rate class.
	if rates["COPY"] > 16e3 || rates["TRIAD"] > 16e3 {
		t.Errorf("rates exceed the 16 GB/s port: %+v", rates)
	}
}

func TestStreamIsSinglePoint(t *testing.T) {
	// The paper's critique: STREAM is one fixed size. Verify the
	// default is far beyond any cache and the trace uses it.
	p := Trace("COPY", DefaultN)
	if p.Phases[0].Loops[0].Body[0].VL != DefaultN {
		t.Error("trace does not use the fixed array length")
	}
	if DefaultN*8 < 8<<20 {
		t.Error("default array should exceed mid-90s caches by far")
	}
}

func TestBytesMoved(t *testing.T) {
	if bytesMoved("COPY", 10) != 160 || bytesMoved("TRIAD", 10) != 240 {
		t.Error("byte accounting wrong")
	}
}
