package slt

import (
	"math"
	"math/rand"
	"testing"
)

func TestConstantFieldPreserved(t *testing.T) {
	g := UniformGrid(32, 16)
	q := make([]float64, 32*16)
	u := make([]float64, len(q))
	v := make([]float64, len(q))
	for i := range q {
		q[i] = 3.25
		u[i] = 1e-5
		v[i] = 5e-6
	}
	out := g.Advect(q, u, v, 1800)
	for i, val := range out {
		if math.Abs(val-3.25) > 1e-12 {
			t.Fatalf("constant not preserved at %d: %v", i, val)
		}
	}
}

func TestShapePreserving(t *testing.T) {
	// The transported field must never exceed the original extrema.
	g := UniformGrid(48, 24)
	rng := rand.New(rand.NewSource(3))
	q := make([]float64, 48*24)
	u := make([]float64, len(q))
	v := make([]float64, len(q))
	for i := range q {
		q[i] = rng.Float64() // in [0,1)
		u[i] = 2e-5 * rng.NormFloat64()
		v[i] = 1e-5 * rng.NormFloat64()
	}
	lo0, hi0 := Extrema(q)
	cur := q
	for step := 0; step < 20; step++ {
		cur = g.Advect(cur, u, v, 1800)
		lo, hi := Extrema(cur)
		if lo < lo0-1e-12 || hi > hi0+1e-12 {
			t.Fatalf("step %d: extrema [%v,%v] exceed initial [%v,%v]", step, lo, hi, lo0, hi0)
		}
	}
}

func TestPositivityOfTracer(t *testing.T) {
	// A non-negative tracer stays non-negative (consequence of shape
	// preservation, crucial for water vapor).
	g := UniformGrid(32, 16)
	q := make([]float64, 32*16)
	u := make([]float64, len(q))
	v := make([]float64, len(q))
	for j := 0; j < 16; j++ {
		for i := 0; i < 32; i++ {
			if i > 8 && i < 16 && j > 4 && j < 10 {
				q[j*32+i] = 1 // a plume
			}
			u[j*32+i] = 3e-5
		}
	}
	cur := q
	for step := 0; step < 50; step++ {
		cur = g.Advect(cur, u, v, 3600)
	}
	for i, v := range cur {
		if v < 0 {
			t.Fatalf("negative tracer %v at %d", v, i)
		}
	}
}

func TestSolidBodyZonalRotationReturns(t *testing.T) {
	// Advect a smooth bump one full revolution in longitude; it must
	// come back close to where it started (semi-Lagrangian schemes
	// allow long steps with little dispersion).
	nlon, nlat := 64, 24
	g := UniformGrid(nlon, nlat)
	q := make([]float64, nlon*nlat)
	u := make([]float64, len(q))
	v := make([]float64, len(q))
	for j := 0; j < nlat; j++ {
		for i := 0; i < nlon; i++ {
			lon := 2 * math.Pi * float64(i) / float64(nlon)
			q[j*nlon+i] = math.Exp(-18 * (math.Pow(math.Cos(g.Lat[j]), 2) * math.Pow(math.Sin((lon-math.Pi)/2), 2)))
			u[j*nlon+i] = 2 * math.Pi / (64 * 3600) // one revolution in 64 hours
		}
	}
	cur := make([]float64, len(q))
	copy(cur, q)
	for step := 0; step < 64; step++ {
		cur = g.Advect(cur, u, v, 3600)
	}
	// Compare against the initial field.
	var num, den float64
	for i := range q {
		num += (cur[i] - q[i]) * (cur[i] - q[i])
		den += q[i] * q[i]
	}
	relL2 := math.Sqrt(num / den)
	if relL2 > 0.15 {
		t.Errorf("after one revolution, relative L2 error = %v, want <= 0.15", relL2)
	}
}

func TestInterpolateExactAtNodes(t *testing.T) {
	g := UniformGrid(16, 8)
	rng := rand.New(rand.NewSource(9))
	q := make([]float64, 16*8)
	for i := range q {
		q[i] = rng.Float64()
	}
	for j := 0; j < 8; j++ {
		for i := 0; i < 16; i++ {
			got := g.Interpolate(q, 2*math.Pi*float64(i)/16, g.Lat[j])
			if math.Abs(got-q[j*16+i]) > 1e-12 {
				t.Fatalf("interpolation not exact at node (%d,%d): %v vs %v", j, i, got, q[j*16+i])
			}
		}
	}
}

func TestInterp1DMonotone(t *testing.T) {
	// Between two nodes the interpolant stays within their values.
	for s := 0.0; s <= 1.0; s += 0.05 {
		v := interp1D(0, 1, 2, 10, s) // steep gradient beyond
		if v < 1-1e-12 || v > 2+1e-12 {
			t.Fatalf("interp1D(%v) = %v escapes [1,2]", s, v)
		}
	}
	// At a local extremum the slope limiter flattens: no overshoot.
	v := interp1D(0, 1, 0.5, 2, 0.5)
	if v > 1 || v < 0.5 {
		t.Errorf("extremum interpolation %v escapes [0.5,1]", v)
	}
}

func TestMonotoneSlopeProperties(t *testing.T) {
	if monotoneSlope(1, -1) != 0 {
		t.Error("slope at extremum not zero")
	}
	if monotoneSlope(0, 1) != 0 {
		t.Error("slope with flat side not zero")
	}
	s := monotoneSlope(1, 3)
	if s <= 0 || s > 3 {
		t.Errorf("harmonic slope %v out of range", s)
	}
}

func TestGridValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewGrid(2, []float64{0, 1, 2, 3}) },
		func() { NewGrid(8, []float64{0, 1}) },
		func() { NewGrid(8, []float64{0, 1, 1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid grid did not panic")
				}
			}()
			f()
		}()
	}
}

func TestSearchLat(t *testing.T) {
	lat := []float64{-1, 0, 1, 2}
	cases := []struct {
		v    float64
		want int
	}{{-2, -1}, {-1, 0}, {-0.5, 0}, {0.5, 1}, {2, 3}, {5, 3}}
	for _, c := range cases {
		if got := searchLat(lat, c.v); got != c.want {
			t.Errorf("searchLat(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestParallelAdvectBitIdentical(t *testing.T) {
	g := UniformGrid(48, 24)
	rng := rand.New(rand.NewSource(11))
	q := make([]float64, 48*24)
	u := make([]float64, len(q))
	v := make([]float64, len(q))
	for i := range q {
		q[i] = rng.Float64()
		u[i] = 2e-5 * rng.NormFloat64()
		v[i] = 1e-5 * rng.NormFloat64()
	}
	serial := g.AdvectParallel(q, u, v, 1800, 1)
	for _, procs := range []int{2, 4, 8} {
		par := g.AdvectParallel(q, u, v, 1800, procs)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("procs=%d: parallel result differs at %d", procs, i)
			}
		}
	}
}

func TestLongitudePeriodicity(t *testing.T) {
	g := UniformGrid(16, 8)
	q := make([]float64, 16*8)
	for i := range q {
		q[i] = float64(i % 16)
	}
	a := g.Interpolate(q, 0.3, 0.2)
	b := g.Interpolate(q, 0.3+2*math.Pi, 0.2)
	c := g.Interpolate(q, 0.3-2*math.Pi, 0.2)
	if math.Abs(a-b) > 1e-12 || math.Abs(a-c) > 1e-12 {
		t.Errorf("interpolation not periodic: %v %v %v", a, b, c)
	}
}
