// Package slt implements shape-preserving semi-Lagrangian transport
// (SLT) in the style of Williamson & Rasch: trace constituents are
// advected by following trajectories backward from each grid point to
// a departure point and interpolating the field there with a monotone
// (shape-preserving) Hermite cubic. The departure-point interpolation
// is indirect addressing on the Gaussian grid — the access pattern the
// paper calls out.
//
// The grid is periodic in longitude (i) and bounded in latitude (j).
package slt

import (
	"fmt"
	"math"

	"sx4bench/internal/sx4/commreg"
)

// Grid describes the transport mesh: nlat rows by nlon columns with
// uniform longitude spacing; latitude rows carry coordinate values
// (e.g. Gaussian latitudes in radians).
type Grid struct {
	NLon, NLat int
	Lat        []float64 // ascending latitude coordinate per row
}

// NewGrid builds a transport grid with the given latitudes.
func NewGrid(nlon int, lat []float64) *Grid {
	if nlon < 4 || len(lat) < 4 {
		panic(fmt.Sprintf("slt: grid too small (%dx%d)", len(lat), nlon))
	}
	for j := 1; j < len(lat); j++ {
		if lat[j] <= lat[j-1] {
			panic("slt: latitudes must ascend")
		}
	}
	return &Grid{NLon: nlon, NLat: len(lat), Lat: lat}
}

// UniformGrid builds a grid with nlat equally spaced interior
// latitudes.
func UniformGrid(nlon, nlat int) *Grid {
	lat := make([]float64, nlat)
	for j := range lat {
		lat[j] = -math.Pi/2 + math.Pi*(float64(j)+0.5)/float64(nlat)
	}
	return NewGrid(nlon, lat)
}

// dlon returns the longitude spacing in radians.
func (g *Grid) dlon() float64 { return 2 * math.Pi / float64(g.NLon) }

// index returns the flat index of (j, i) with longitude wraparound.
func (g *Grid) index(j, i int) int {
	i = ((i % g.NLon) + g.NLon) % g.NLon
	return j*g.NLon + i
}

// monotoneSlope returns the Fritsch-Carlson limited derivative for the
// interval pair (dPrev, dNext) of secant slopes: zero at local extrema,
// otherwise a harmonic-mean-like average that guarantees monotone
// interpolation.
func monotoneSlope(dPrev, dNext float64) float64 {
	if dPrev*dNext <= 0 {
		return 0
	}
	return 2 * dPrev * dNext / (dPrev + dNext)
}

// hermite evaluates the cubic Hermite interpolant on [0,1] with values
// f0, f1 and derivatives m0, m1 (already scaled by the interval).
func hermite(f0, f1, m0, m1, s float64) float64 {
	s2 := s * s
	s3 := s2 * s
	h00 := 2*s3 - 3*s2 + 1
	h10 := s3 - 2*s2 + s
	h01 := -2*s3 + 3*s2
	h11 := s3 - s2
	return h00*f0 + h10*m0 + h01*f1 + h11*m1
}

// interp1D interpolates monotonically in a 4-point stencil f[-1..2]
// at fraction s in [0,1] between f[0] and f[1], clamping the result to
// [min(f0,f1), max(f0,f1)] (the shape-preserving property).
func interp1D(fm1, f0, f1, f2, s float64) float64 {
	dPrev := f0 - fm1
	dMid := f1 - f0
	dNext := f2 - f1
	m0 := monotoneSlope(dPrev, dMid)
	m1 := monotoneSlope(dMid, dNext)
	v := hermite(f0, f1, m0, m1, s)
	lo, hi := f0, f1
	if lo > hi {
		lo, hi = hi, lo
	}
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// Interpolate evaluates the shape-preserving tensor-product cubic at
// fractional position (lon in radians, lat in radians) in field q.
func (g *Grid) Interpolate(q []float64, lon, lat float64) float64 {
	if len(q) != g.NLat*g.NLon {
		panic("slt: field length mismatch")
	}
	// Longitude cell.
	dl := g.dlon()
	lon = math.Mod(math.Mod(lon, 2*math.Pi)+2*math.Pi, 2*math.Pi)
	fi := lon / dl
	i0 := int(math.Floor(fi))
	si := fi - float64(i0)

	// Latitude cell: clamp to the interior.
	j0 := searchLat(g.Lat, lat)
	var sj float64
	if j0 < 0 {
		j0, sj = 0, 0
	} else if j0 >= g.NLat-1 {
		j0, sj = g.NLat-2, 1
	} else {
		sj = (lat - g.Lat[j0]) / (g.Lat[j0+1] - g.Lat[j0])
	}

	// Interpolate along longitude on four latitude rows, then along
	// latitude.
	var rows [4]float64
	for r := 0; r < 4; r++ {
		j := clampInt(j0-1+r, 0, g.NLat-1)
		fm1 := q[g.index(j, i0-1)]
		f0 := q[g.index(j, i0)]
		f1 := q[g.index(j, i0+1)]
		f2 := q[g.index(j, i0+2)]
		rows[r] = interp1D(fm1, f0, f1, f2, si)
	}
	return interp1D(rows[0], rows[1], rows[2], rows[3], sj)
}

// searchLat returns the largest j with Lat[j] <= lat, or -1.
func searchLat(lat []float64, v float64) int {
	lo, hi := 0, len(lat)
	for lo < hi {
		mid := (lo + hi) / 2
		if lat[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Advect transports q for one time step dt [s] with wind components
// u, v [rad/s] in longitude/latitude (angular velocities), using a
// two-pass iterated midpoint departure-point calculation. It returns
// the transported field.
func (g *Grid) Advect(q, u, v []float64, dt float64) []float64 {
	return g.AdvectParallel(q, u, v, dt, 1)
}

// AdvectParallel is Advect with the latitude rows distributed over
// procs goroutines (a microtasked loop in SX-4 terms; see package
// commreg). Results are bit-identical to the serial path: rows write
// disjoint output.
func (g *Grid) AdvectParallel(q, u, v []float64, dt float64, procs int) []float64 {
	if len(q) != g.NLat*g.NLon || len(u) != len(q) || len(v) != len(q) {
		panic("slt: field length mismatch")
	}
	out := make([]float64, len(q))
	dl := g.dlon()
	commreg.ParallelFor(procs, g.NLat, func(j int) {
		for i := 0; i < g.NLon; i++ {
			idx := j*g.NLon + i
			lon := float64(i) * dl
			lat := g.Lat[j]
			// First guess: Euler backward from the arrival point.
			depLon := lon - u[idx]*dt
			depLat := lat - v[idx]*dt
			// Midpoint iteration: wind at the midpoint of the
			// trajectory (interpolated linearly via the same scheme).
			for it := 0; it < 2; it++ {
				midLon := lon - 0.5*u[idx]*dt
				midLat := lat - 0.5*v[idx]*dt
				um := g.Interpolate(u, midLon, clampLat(midLat))
				vm := g.Interpolate(v, midLon, clampLat(midLat))
				depLon = lon - um*dt
				depLat = lat - vm*dt
			}
			out[idx] = g.Interpolate(q, depLon, clampLat(depLat))
		}
	})
	return out
}

func clampLat(lat float64) float64 {
	const cap = math.Pi/2 - 1e-9
	if lat > cap {
		return cap
	}
	if lat < -cap {
		return -cap
	}
	return lat
}

// Extrema returns the global min and max of a field.
func Extrema(q []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range q {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
