# sx4bench — build, test, and regenerate the paper's results.

GO ?= go

.PHONY: all build vet lint lint-facts test test-short race race-full bench bench-baseline bench-sweep bench-sweep-short bench-capacity bench-capacity-short ci smoke serve-smoke warm-restart-smoke chaos faults capacity examples figures report clean goldens goldens-check fuzz-smoke cover

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# sx4lint enforces the repo's determinism, layering and
# golden-stability invariants (see DESIGN.md, "Static analysis").
# Both entry points run: the standalone multichecker, and the same
# binary driven by go vet's -vettool protocol (which caches per
# package in the build cache).
SX4LINT_SRCS := go.mod $(wildcard cmd/sx4lint/*.go) $(shell find internal/analysis -name '*.go' -not -path '*/testdata/*' 2>/dev/null)

bin/sx4lint: $(SX4LINT_SRCS)
	$(GO) build -o $@ ./cmd/sx4lint

lint: bin/sx4lint
	./bin/sx4lint ./...
	$(MAKE) lint-facts

# lint-facts drives the facts-enabled unitchecker path: go vet invokes
# bin/sx4lint once per package, threading the gob facts files along
# the import graph — the mode in which detflow's cross-package taint
# actually propagates (and the one CI caches per package).
lint-facts: bin/sx4lint
	$(GO) vet -vettool=$(abspath bin/sx4lint) ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

race-full:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# What CI runs (see .github/workflows/ci.yml): vet (plus staticcheck
# and govulncheck when installed — CI installs them, local runs skip
# them gracefully), sx4lint, build, the full test suite under the race
# detector, the golden-artifact check, the cross-machine smoke sweep,
# the resilience smoke, the fleet capacity smoke (golden-pinned
# capacity artifact plus a live -fleet run), the cold-sweep and
# capacity scaling smokes (1k memo-cold scenarios each, checksums
# cross-checked), the sx4d daemon smoke (live /healthz and
# golden-pinned /v1/run over real HTTP), the seeded chaos soak, and
# the cache warm-restart smoke (SIGTERM → snapshot → reboot → hit).
ci:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI installs it)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed; skipping (CI installs it)"; fi
	$(MAKE) lint
	$(GO) build ./...
	$(MAKE) race-full
	$(GO) run ./cmd/goldens
	$(GO) run ./cmd/ncarbench -machine all -short
	$(MAKE) faults
	$(MAKE) capacity
	$(MAKE) bench-sweep-short
	$(MAKE) bench-capacity-short
	$(MAKE) serve-smoke
	$(MAKE) chaos
	$(MAKE) warm-restart-smoke

# Cross-machine smoke: one line of scalar anchors per registered
# machine, exercising the Target registry end to end.
smoke:
	$(GO) run ./cmd/ncarbench -machine all -short

# Daemon smoke: boot sx4d on an ephemeral port, probe /healthz, and
# diff a live /v1/run response against the committed golden — the
# serve artifact verified over real HTTP instead of in-process.
bin/sx4d: go.mod $(wildcard cmd/sx4d/*.go) $(shell find internal -name '*.go' -not -path '*/testdata/*' 2>/dev/null)
	$(GO) build -o $@ ./cmd/sx4d

serve-smoke: bin/sx4d
	./scripts/serve_smoke.sh

# The resilient daemon client; built alongside sx4d for the smokes.
bin/sx4ctl: go.mod $(wildcard cmd/sx4ctl/*.go) $(shell find internal -name '*.go' -not -path '*/testdata/*' 2>/dev/null)
	$(GO) build -o $@ ./cmd/sx4ctl

# Warm-restart smoke: boot sx4d with a snapshot file, answer the
# canonical query through sx4ctl (a miss), SIGTERM the daemon (drain
# writes the snapshot), boot a second daemon from the same file, and
# require the same query to be an exact cache hit with a
# byte-identical body.
warm-restart-smoke: bin/sx4d bin/sx4ctl
	./scripts/warm_restart_smoke.sh

# Deterministic chaos soak: hammer an sx4d instance through a seeded
# fault-injecting middleware (latency, 503s, slow bodies, cancelled
# contexts) and assert the invariants — no lost responses, admission
# books balance, gauges return to zero, snapshot stays deterministic,
# no goroutine leaks — at every seed. Override the seed list with
# CHAOS_SEEDS=7,8,9.
CHAOS_SEEDS ?= 1,2,3
chaos:
	$(GO) test ./internal/chaos -race -count=1 -chaos.seeds $(CHAOS_SEEDS)

# Resilience smoke: the canonical fault schedule across sx4-1, sx4-32
# and c90 — the resilience artifact must match its golden, no machine
# may lose a job (last column all zeros), and a resilient RADABS run
# must survive the schedule end to end.
faults:
	$(GO) run ./cmd/goldens -artifact resilience
	$(GO) run ./cmd/figures -exp resilience | awk 'NR>3 && NF>1 { if ($$NF != "0") { print "faults: lost jobs in row:", $$0; exit 1 } }'
	$(GO) run ./cmd/ncarbench -machine sx4-32 -run RADABS -faults 1996

# Fleet capacity smoke: the canonical capacity artifact must match its
# golden (the 24-scenario Monte Carlo over sx4-32x2,c90), and a live
# -fleet run must answer — the multi-node engine exercised end to end,
# with no job lost (last column all zeros).
capacity:
	$(GO) run ./cmd/goldens -artifact capacity
	$(GO) run ./cmd/ncarbench -fleet sx4-32x2,c90 -scenarios 24 | awk 'NR>3 && NF>1 { if ($$NF != "0") { print "capacity: lost jobs in row:", $$0; exit 1 } }'

# Regenerate the golden artifacts in internal/check/testdata/goldens
# after an intentional model change; review `git diff` before
# committing. goldens-check verifies without writing (what CI runs).
goldens:
	$(GO) run ./cmd/goldens -update

goldens-check:
	$(GO) run ./cmd/goldens

# Run each native fuzz target briefly (no new corpus is committed);
# any panic or property violation fails the target.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test ./internal/check -run '^$$' -fuzz '^FuzzProgramFingerprint$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/check -run '^$$' -fuzz '^FuzzMachineRun$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/check -run '^$$' -fuzz '^FuzzReportParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve -run '^$$' -fuzz '^FuzzServeRequest$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve -run '^$$' -fuzz '^FuzzCacheSnapshotLoad$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/fault -run '^$$' -fuzz '^FuzzFaultPlanParse$$' -fuzztime $(FUZZTIME)

# Aggregate statement coverage across all packages.
cover:
	$(GO) test -coverprofile=coverage.out -coverpkg=./... ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# Record the benchmark baseline (including the serial-vs-parallel
# RunAll wall-clock pair) as BENCH_BASELINE.json.
bench-baseline:
	$(GO) test -run '^$$' -bench=. -benchmem . | $(GO) run ./cmd/benchjson -o BENCH_BASELINE.json

# Record the cold-sweep scaling baseline — the memo-cold 10k-scenario
# sweep across the machine registry at 1/4/8 workers, plus the
# interpreted-engine ablation whose ratio to the 8-worker run is
# pinned as coldsweep_compiled_speedup — as BENCH_SWEEP.json.
# bench-sweep-short is the CI smoke: 1k scenarios, one iteration,
# checksum cross-checked between every variant.
bench-sweep:
	$(GO) test -run '^$$' -bench '^BenchmarkColdSweep10k$$' -benchmem . | $(GO) run ./cmd/benchjson -o BENCH_SWEEP.json

bench-sweep-short:
	$(GO) test -run '^$$' -bench '^BenchmarkColdSweep10k$$' -short -benchtime 1x .

# Record the fleet capacity scaling baseline — the memo-cold
# 10k-scenario Monte Carlo over the canonical fleet at 1/4/8 workers,
# with the 1-vs-8-worker ratio pinned as capacity_parallel_speedup —
# as BENCH_CAPACITY.json. bench-capacity-short is the CI smoke: 1k
# scenarios, one iteration, checksum cross-checked between variants.
bench-capacity:
	$(GO) test -run '^$$' -bench '^BenchmarkCapacityMonteCarlo$$' -benchmem . | $(GO) run ./cmd/benchjson -o BENCH_CAPACITY.json

bench-capacity-short:
	$(GO) test -run '^$$' -bench '^BenchmarkCapacityMonteCarlo$$' -short -benchtime 1x .

# Regenerate every table and figure of the paper.
figures:
	$(GO) run ./cmd/figures -exp all

# The procurement-style findings document (all anchors, pass/fail).
report:
	$(GO) run ./cmd/figures -exp report

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/climate
	$(GO) run ./examples/ocean
	$(GO) run ./examples/procurement
	$(GO) run ./examples/multinode
	$(GO) run ./examples/operations

clean:
	$(GO) clean ./...
