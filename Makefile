# sx4bench — build, test, and regenerate the paper's results.

GO ?= go

.PHONY: all build vet test test-short race bench examples figures report clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./internal/sx4/commreg/ ./internal/slt/ ./internal/ccm2/ ./internal/mom/

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper.
figures:
	$(GO) run ./cmd/figures -exp all

# The procurement-style findings document (all anchors, pass/fail).
report:
	$(GO) run ./cmd/figures -exp report

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/climate
	$(GO) run ./examples/ocean
	$(GO) run ./examples/procurement
	$(GO) run ./examples/multinode
	$(GO) run ./examples/operations

clean:
	$(GO) clean ./...
