// Multinode: the paper benchmarks one 32-CPU node, but the SX-4
// architecture scales to 16 nodes (512 CPUs) over the IXS crossbar
// with a single system image (Section 2.5). This example projects the
// CCM2 benchmark across nodes — the procurement's "four 32-processor
// SX-4 systems" as one machine — including the all-to-all spectral
// transpose the IXS would carry.
package main

import (
	"fmt"

	"sx4bench"
	"sx4bench/internal/ccm2"
	"sx4bench/internal/sx4/ixs"
)

func main() {
	m := sx4bench.Benchmarked()

	fmt.Println("IXS characteristics (16-node fabric):")
	x := ixs.New(16)
	fmt.Printf("  %.0f GB/s per node channel, %.0f GB/s bisection, %.1f us latency\n",
		x.PerNodeBytesPerSec/1e9, x.BisectionBytesPerSec/1e9, x.LatencySec*1e6)
	fmt.Printf("  global barrier through internode communications registers: %.1f us\n",
		x.BarrierTime()*1e6)

	for _, name := range []string{"T42L18", "T170L18"} {
		res, _ := ccm2.ResolutionByName(name)
		fmt.Printf("\nCCM2 %s across SX-4/32 nodes (transpose %.1f MB/step):\n",
			name, float64(ccm2.TransposeBytesPerStep(res))/1e6)
		for _, r := range ccm2.MultiNodeSweep(m, res, 16) {
			fmt.Printf("  %2d node(s) / %3d CPUs: %7.2f ms/step  %7.1f GFLOPS  efficiency %.0f%%\n",
				r.Nodes, r.TotalCPUs, r.StepSeconds*1e3, r.GFLOPS, 100*r.Efficiency)
		}
	}
	fmt.Println("\nthe projection's lesson matches Figure 8's: big problems scale, small ones are")
	fmt.Println("communication- and overhead-bound — T170 earns the full machine, T42 does not.")
}
