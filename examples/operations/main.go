// Operations: the SUPER-UX side of the paper (Section 2.6) — Resource
// Blocking, the NQS batch subsystem with queue complexes and qcat,
// checkpoint/restart, and the XMU-backed SFS file cache — driving a
// day-in-the-life of the machine room.
package main

import (
	"fmt"

	"sx4bench/internal/superux"
	"sx4bench/internal/sx4/iop"
	"sx4bench/internal/sx4/xmu"
)

func main() {
	// Partition the SX-4/32 the way Section 2.6.4 describes: a batch
	// block for long vector jobs, an interactive block, and a small
	// FIFO block for static parallel scheduling.
	sys := superux.NewSystem(
		superux.ResourceBlock{Name: "batch", MaxCPUs: 24, MemGB: 6, Policy: superux.FIFO},
		superux.ResourceBlock{Name: "interactive", MaxCPUs: 6, MemGB: 1.5, Policy: superux.Interactive},
		superux.ResourceBlock{Name: "static", MaxCPUs: 2, MemGB: 0.5, Policy: superux.FIFO},
	)
	// A queue complex caps concurrent large jobs across blocks.
	sys.AddComplex(superux.Complex{Name: "bigjobs", Blocks: []string{"batch", "static"}, RunLimit: 2})

	fmt.Println("submitting the evening queue:")
	ccm2Job := sys.Submit(superux.Job{Name: "ccm2-T106", Block: "batch", CPUs: 16, MemGB: 4, Seconds: 5400})
	momJob := sys.Submit(superux.Job{Name: "mom-1deg", Block: "batch", CPUs: 8, MemGB: 2, Seconds: 3600})
	postJob := sys.Submit(superux.Job{Name: "postproc", Block: "static", CPUs: 2, MemGB: 0.4, Seconds: 1200})
	for i := 0; i < 4; i++ {
		sys.Submit(superux.Job{Name: fmt.Sprintf("login-%d", i), Block: "interactive",
			CPUs: 1, MemGB: 0.2, Seconds: 600, Priority: 5})
	}

	for _, id := range []int{ccm2Job, momJob, postJob} {
		st, _ := sys.Status(id)
		fmt.Printf("  job %d: %v\n", id, st)
	}
	out, _ := sys.QCat(ccm2Job)
	fmt.Printf("qcat %d -> %s", ccm2Job, out)

	// Checkpoint the whole subsystem (operator command, no special
	// programming in the jobs), then restart and run to completion.
	snap, err := sys.Checkpoint()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ncheckpoint taken: %d bytes\n", len(snap))
	restored, err := superux.Restart(snap)
	if err != nil {
		panic(err)
	}
	end := restored.Advance()
	fmt.Printf("restarted system drained the queue at t=%.0f s (%.1f h of virtual time)\n",
		end, end/3600)

	// The SFS cache in front of the disk array, backed by the XMU.
	fmt.Println("\nSFS file-system cache (XMU-backed, write-back):")
	sfs := superux.NewSFS(xmu.New(4), iop.NewDisk(), 1<<20, 256, 4, true)
	cold := sfs.Read(0, 64<<20)
	warm := sfs.Read(0, 64<<20)
	wrote := sfs.Write(128<<20, 64<<20)
	flush := sfs.Flush()
	fmt.Printf("  cold 64 MB read: %6.3f s   warm re-read: %6.4f s (hit rate %.0f%%)\n",
		cold, warm, 100*sfs.HitRate())
	fmt.Printf("  64 MB write-back: %5.3f s   flush to disk: %5.2f s\n", wrote, flush)
}
