// Ocean: run both ocean models of the suite. MOM (rigid lid) executes
// its 3-degree porting-verification case on the host — 40 time steps,
// the western boundary current appears — and the SX-4 model reproduces
// the 1-degree Table 7 scalability. POP (implicit free surface)
// demonstrates stepping far beyond the gravity-wave CFL limit and its
// paper-reported 537 MFLOPS single-CPU rate.
package main

import (
	"fmt"

	"sx4bench"
	"sx4bench/internal/mom"
	"sx4bench/internal/pop"
)

func main() {
	// --- MOM verification case (the suite's porting check) ---
	m := mom.New(mom.LowRes)
	dt := m.StableTimeStep()
	fmt.Printf("%s: 40 steps at dt=%.0f s\n", m, dt)
	for i := 0; i < 40; i++ {
		m.Step(dt)
	}
	d := m.Diagnose()
	iMax, western := m.WesternIntensification()
	fmt.Printf("  mean T=%.2f C, mean S=%.2f, max|psi|=%.3g\n", d.MeanTemp, d.MeanSalt, d.MaxPsi)
	fmt.Printf("  gyre maximum at longitude index %d (western boundary current: %v)\n", iMax, western)

	// --- MOM Table 7 on the machine model ---
	mach := sx4bench.Benchmarked()
	fmt.Println("\nMOM 1-degree, 350 time steps (Table 7):")
	t1 := mom.Benchmark350(mach, 1)
	for _, p := range mom.Table7CPUCounts {
		tp := mom.Benchmark350(mach, p)
		fmt.Printf("  %2d CPUs: %8.2f s  speedup %.2f\n", p, tp, t1/tp)
	}

	// --- POP free-surface model ---
	cfg := pop.Config{Name: "demo", NLon: 72, NLat: 36, NLev: 4, DxDeg: 5}
	pm := pop.New(cfg)
	cfl := pm.GravityWaveCFL()
	fmt.Printf("\n%s: explicit gravity-wave CFL is %.0f s; stepping at 5x that\n", pm, cfl)
	for i := 0; i < 24; i++ {
		pm.Step(5 * cfl)
	}
	fmt.Printf("  after %d implicit steps: max|eta|=%.3f m, mean eta=%.2e (volume conserved), CG iters=%d\n",
		pm.Steps(), pm.MaxAbsEta(), pm.MeanEta(), pm.CGIters)
	fmt.Printf("  2-degree benchmark on one modeled CPU: %.0f MFLOPS (paper: 537, CSHIFT not vectorized)\n",
		pop.SustainedMFLOPS(mach))
	fmt.Printf("  if CSHIFT vectorized: %.1fx faster\n", pop.VectorizedCSHIFTSpeedup(mach))
}
