// Procurement: the Section 3 story — why LINPACK, HINT, STREAM and the
// NAS kernels were inappropriate for the NCAR procurement. Each
// comparator is run next to the suite's own RADABS kernel across the
// modeled machines, reproducing Table 1's inversion and the
// peak-versus-application gap.
package main

import (
	"fmt"
	"os"

	"sx4bench"
	"sx4bench/internal/core"
	"sx4bench/internal/hint"
	"sx4bench/internal/linpack"
	"sx4bench/internal/nas"
	"sx4bench/internal/ncar"
	"sx4bench/internal/radabs"
	"sx4bench/internal/stream"
	"sx4bench/internal/target"
)

func main() {
	m := sx4bench.Benchmarked()

	// Table 1: HINT vs RADABS across the comparison systems.
	if err := core.WriteTable(os.Stdout, ncar.Table1()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The real HINT algorithm, for the record.
	steps := hint.Run(20000)
	last := steps[len(steps)-1]
	fmt.Printf("\nHINT (host run): bounds [%.6f, %.6f] bracket 2ln2-1 = %.6f after %d subdivisions\n",
		last.Lower, last.Upper, hint.TrueArea, last.Iteration)

	// LINPACK on the SX-4: near peak, unlike any climate code.
	fmt.Printf("\nLINPACK on the SX-4/1 model (peak %.0f MFLOPS):\n", m.Config().PeakFlopsPerCPU()/1e6)
	for _, n := range []int{100, 1000} {
		fmt.Printf("  n=%-5d %7.0f MFLOPS\n", n, linpack.MFLOPS(m, n))
	}
	p := radabs.Trace(radabs.BenchmarkColumns, radabs.DefaultLevels)
	fmt.Printf("  RADABS  %7.1f MFLOPS  <- the suite's own ceiling for climate codes\n",
		m.Run(p, target.RunOpts{Procs: 1}).MFLOPS())

	// STREAM: a single fixed-size point per kernel.
	fmt.Println("\nSTREAM on the SX-4/1 model (single fixed size; the NCAR kernels sweep sizes):")
	for _, r := range stream.Run(m) {
		fmt.Printf("  %-6s %8.0f MB/s\n", r.Kernel, r.MBps)
	}

	// NAS-style kernels.
	fmt.Println("\nNAS-kernel stand-ins on the SX-4/1 model:")
	fmt.Printf("  EP %7.0f MFLOPS   MG-smooth %7.0f MFLOPS\n",
		nas.EPMFLOPS(m, 1<<22), nas.MGMFLOPS(m, 128))
	ep := nas.EP(100000, 271828183)
	fmt.Printf("  EP host check: %d Gaussian pairs (%.1f%% acceptance)\n",
		ep.Pairs, 100*float64(ep.Pairs)/100000)

	// The punchline.
	sparc := target.MustLookup("sparc20")
	ymp := target.MustLookup("ymp")
	fmt.Printf("\nconclusion: HINT rates the %s above the %s, RADABS says the opposite by %.0fx —\n",
		sparc.Name(), ymp.Name(),
		ymp.Run(p, target.RunOpts{Procs: 1}).MFLOPS()/sparc.Run(p, target.RunOpts{Procs: 1}).MFLOPS())
	fmt.Println("a procurement for climate modeling needs workload-derived benchmarks.")
}
