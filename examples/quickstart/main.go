// Quickstart: build the benchmarked SX-4/32, probe its memory system
// with the COPY kernel, and measure the RADABS radiation kernel — the
// two numbers the paper leads with (memory bandwidth and sustained
// Y-MP-equivalent MFLOPS).
package main

import (
	"fmt"

	"sx4bench"
	"sx4bench/internal/core"
	"sx4bench/internal/kernels"
	"sx4bench/internal/ncar"
	"sx4bench/internal/radabs"
	"sx4bench/internal/target"
)

func main() {
	m := sx4bench.Benchmarked()
	fmt.Println("machine:", m)

	// COPY at three points of the constant-volume sweep: many short
	// vectors, the midpoint, and one long vector.
	fmt.Println("\nCOPY memory bandwidth (KTRIES=20, best time reported):")
	noise := ncar.DefaultNoise()
	for _, k := range []kernels.Copy{
		{N: 10, M: 100_000},
		{N: 1_000, M: 1_000},
		{N: 1_000_000, M: 1},
	} {
		meas := core.Run(m, k.Trace(), target.RunOpts{Procs: 1}, 20, noise, k.PayloadBytes())
		fmt.Printf("  N=%-9d M=%-8d -> %8.0f MB/s\n", k.N, k.M, meas.MBps())
	}

	// RADABS: the raw-performance kernel.
	p := radabs.Trace(radabs.BenchmarkColumns, radabs.DefaultLevels)
	r := m.Run(p, target.RunOpts{Procs: 1})
	fmt.Printf("\nRADABS on one CPU: %.1f Y-MP-equivalent MFLOPS (paper: 865.9)\n", r.MFLOPS())

	// And the same kernel across the whole node.
	r32 := m.Run(p, target.RunOpts{Procs: 32})
	fmt.Printf("RADABS on 32 CPUs: %.1f MFLOPS (embarrassingly parallel: %.1fx speedup)\n",
		r32.MFLOPS(), r.Seconds/r32.Seconds)
}
