// Climate: integrate the CCM2 skeleton — spectral shallow-water
// dynamics on the Gaussian grid, radabs-driven radiative relaxation,
// and shape-preserving semi-Lagrangian moisture transport — for a few
// model days on the host, verify its conservation properties, then ask
// the SX-4 model how the full T42..T170 configurations would scale
// (the paper's Figure 8 and Table 5).
package main

import (
	"fmt"

	"sx4bench"
	"sx4bench/internal/ccm2"
)

func main() {
	// A small truncation keeps the host integration quick; the physics
	// and transport code paths are the same ones the full resolutions
	// use.
	res := ccm2.Resolution{Name: "T21L3", T: 21, NLat: 32, NLon: 64, NLev: 3, TimeStepMin: 10}
	model := ccm2.NewModel(res, 3)
	dt := model.StableTimeStep()
	fmt.Printf("integrating %s with dt=%.0f s\n", res.Name, dt)

	mass0 := model.Layers[0].MeanPhi()
	for i := 0; i < 48; i++ {
		model.Step(dt)
	}
	fmt.Printf("after %d steps: mean geopotential %.4f (t=0: %.4f), checksum %.6g\n",
		model.Steps(), model.Layers[0].MeanPhi(), mass0, model.Checksum())
	q := model.Tr.MeanValue(model.Moisture[0])
	fmt.Printf("layer-0 moisture mean: %.3e kg/kg (positive, bounded: SLT is shape preserving)\n", q)

	// Performance on the modeled SX-4/32 at the paper's resolutions.
	m := sx4bench.Benchmarked()
	fmt.Println("\nCCM2 scalability on the SX-4/32 model (Figure 8):")
	for _, name := range []string{"T42L18", "T106L18", "T170L18"} {
		r, _ := ccm2.ResolutionByName(name)
		fmt.Printf("  %-8s", name)
		for _, p := range []int{1, 4, 16, 32} {
			fmt.Printf("  %2dcpu %6.2f GF", p, ccm2.SustainedGFLOPS(m, r, p))
		}
		fmt.Println()
	}

	t42, _ := ccm2.ResolutionByName("T42L18")
	_, io, total := ccm2.YearSim(m, t42, 32)
	fmt.Printf("\none simulated year at T42L18: %.0f s wall clock (%.0f s of history I/O); paper: 1327.53 s\n",
		total, io)
}
