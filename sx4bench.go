// Package sx4bench reproduces "Architecture and Application: The
// Performance of the NEC SX-4 on the NCAR Benchmark Suite" (Hammond,
// Loft & Tannenbaum, SC'96): a calibrated performance model of the NEC
// SX-4 parallel vector supercomputer, full implementations of the NCAR
// Benchmark Suite's thirteen kernels and three geophysical applications
// (CCM2-style spectral climate model, MOM rigid-lid and POP
// free-surface ocean models), the comparison benchmarks the paper
// discusses (LINPACK, HINT, STREAM, NAS-style kernels), and runners
// that regenerate every table and figure in the paper's evaluation.
//
// This file is the curated facade over the internal packages; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-model numbers.
package sx4bench

import (
	"fmt"
	"io"

	"sx4bench/internal/core"
	"sx4bench/internal/core/sched"
	"sx4bench/internal/fault"
	"sx4bench/internal/machine"
	"sx4bench/internal/ncar"
	"sx4bench/internal/serve"
	"sx4bench/internal/sx4"
	"sx4bench/internal/target"
)

// Machine is the SX-4 performance model (see internal/sx4).
type Machine = sx4.Machine

// Config describes an SX-4 system configuration.
type Config = sx4.Config

// Target is the machine-agnostic execution interface every modeled
// system satisfies (see internal/target). Lookup resolves a registry
// name ("ymp", "sx4-32", ...) to a fresh instance; Machines lists the
// registered names in canonical cross-machine column order.
type Target = target.Target

// Lookup resolves a registered machine name to a fresh Target.
func Lookup(name string) (Target, error) { return target.Lookup(name) }

// Machines returns the registered machine names in canonical order.
func Machines() []string { return target.All() }

// Table and Figure are rendered experiment results.
type (
	Table  = core.Table
	Figure = core.Figure
)

// Benchmarked returns the system measured in the paper: an SX-4/32
// with the 9.2 ns pre-production clock (Table 2).
func Benchmarked() *Machine { return machine.SX4Benchmarked() }

// Production returns an SX-4 with the production 8.0 ns clock, cpus
// processors per node and the given node count (joined by the IXS).
func Production(cpus, nodes int) *Machine { return machine.SX4Production(cpus, nodes) }

// Experiments lists the regenerable experiment identifiers.
func Experiments() []string {
	return []string{
		"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"fig5", "fig6", "fig7", "fig8",
		"radabs", "pop", "prodload", "correctness", "io",
		"multinode", "report", "profile", "crossmachine", "resilience",
		"serve", "capacity",
	}
}

// RunExperiment regenerates one paper experiment by identifier and
// writes it as text to w.
func RunExperiment(w io.Writer, m Target, id string) error {
	switch id {
	case "table1":
		return core.WriteTable(w, ncar.Table1())
	case "table2":
		return core.WriteTable(w, ncar.Table2())
	case "table3":
		return core.WriteTable(w, ncar.Table3(m))
	case "table4":
		return core.WriteTable(w, ncar.Table4())
	case "table5":
		return core.WriteTable(w, ncar.Table5(m))
	case "table6":
		return core.WriteTable(w, ncar.Table6(m))
	case "table7":
		return core.WriteTable(w, ncar.Table7(m))
	case "fig5":
		return core.WriteFigure(w, ncar.Fig5(m, 4))
	case "fig6":
		return core.WriteFigure(w, ncar.Fig6(m))
	case "fig7":
		return core.WriteFigure(w, ncar.Fig7(m))
	case "fig8":
		return core.WriteFigure(w, ncar.Fig8(m))
	case "radabs":
		_, err := fmt.Fprintf(w, "RADABS (SX-4/1): %.1f Cray Y-MP equivalent MFLOPS (paper: 865.9)\n",
			ncar.RADABSMFlops(m))
		return err
	case "pop":
		_, err := fmt.Fprintf(w, "POP 2-degree (SX-4/1): %.0f MFLOPS (paper: 537)\n", ncar.POPMFlops(m))
		return err
	case "prodload":
		r := ncar.Prodload(m)
		_, err := fmt.Fprintf(w,
			"PRODLOAD: test1=%.0fs test2=%.0fs test3=%.0fs test4=%.0fs total=%.0fs (%.1f min; paper: 93 min 28 s)\n",
			r.Test1, r.Test2, r.Test3, r.Test4, r.TotalSeconds, r.TotalMinutes())
		return err
	case "correctness":
		c := ncar.RunCorrectness()
		if _, err := fmt.Fprintf(w, "PARANOIA: %s\n", c.Paranoia.Summary()); err != nil {
			return err
		}
		for _, e := range c.Elefunt {
			if _, err := fmt.Fprintf(w, "ELEFUNT %s\n", e); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "correctness category pass: %v\n", c.Pass)
		return err
	case "io":
		r := ncar.RunIOCategory()
		for _, h := range r.History {
			if _, err := fmt.Fprintf(w, "IO %s\n", h); err != nil {
				return err
			}
		}
		for _, p := range r.HIPPI {
			if _, err := fmt.Fprintf(w, "HIPPI pkt=%dB x%d: %.1f MB/s per transfer, %.1f aggregate\n",
				p.PacketBytes, p.Concurrent, p.PerTransferMBps, p.AggregateMBps); err != nil {
				return err
			}
		}
		for _, n := range r.Network {
			if _, err := fmt.Fprintf(w, "NETWORK %-16s %8.3f s %8.2f MB/s\n", n.Name, n.Seconds, n.MBps); err != nil {
				return err
			}
		}
		for _, c := range r.Concurrent {
			if _, err := fmt.Fprintf(w, "IO %2d writers: CPU-blocked %6.2f s, on disk after %6.2f s\n",
				c.Writers, c.CPUSeconds, c.DiskSeconds); err != nil {
				return err
			}
		}
		return nil
	case "multinode":
		for _, res := range []string{"T42L18", "T170L18"} {
			tab, err := ncar.MultiNodeTable(m, res)
			if err != nil {
				return err
			}
			if err := core.WriteTable(w, tab); err != nil {
				return err
			}
		}
		return nil
	case "report":
		return ncar.WriteReport(w, m)
	case "crossmachine":
		tab, err := ncar.CrossMachineTable()
		if err != nil {
			return err
		}
		return core.WriteTable(w, tab)
	case "resilience":
		tab, err := ncar.ResilienceTable(fault.Canonical())
		if err != nil {
			return err
		}
		return core.WriteTable(w, tab)
	case "serve":
		// The canonical sx4d response body: what POST /v1/run returns
		// for the full suite on the flagship configuration. m is unused
		// — the daemon resolves machines through the registry, and the
		// artifact pins the wire bytes, not a particular instance.
		//
		//sx4lint:ignore detflow the selects in serve gate execution scheduling (semaphore vs ctx) only; the response bytes are content-addressed, cached by fingerprint, and pinned by the serve golden
		return serve.RenderCanonical(w)
	case "capacity":
		// The canonical fleet capacity Monte Carlo. m is unused — the
		// fleet is resolved from the registry by specification string,
		// and the table is byte-identical for every worker count.
		tab, err := ncar.CapacityTable()
		if err != nil {
			return err
		}
		return core.WriteTable(w, tab)
	case "profile":
		for _, res := range []string{"T42L18", "T170L18"} {
			tab, err := ncar.ProfileTable(m, res, m.Spec().CPUs)
			if err != nil {
				return err
			}
			if err := core.WriteTable(w, tab); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("sx4bench: unknown experiment %q (known: %v)", id, Experiments())
}

// RunAll regenerates every experiment in order, fanning the work
// across runtime.GOMAXPROCS(0) workers. The output stream is
// byte-identical to running the experiments serially.
func RunAll(w io.Writer, m Target) error {
	return RunAllWorkers(w, m, 0)
}

// RunAllWorkers is RunAll with an explicit worker count (the repo
// convention: 0 means GOMAXPROCS, 1 the plain serial loop). Every
// experiment's output is buffered and emitted in the canonical
// Experiments() order, so the stream is byte-identical for every
// worker count; an experiment's error does not cancel the others, and
// the first failing experiment (in order) determines where the stream
// stops and which error is returned — exactly the serial behaviour.
func RunAllWorkers(w io.Writer, m Target, workers int) error {
	var tasks []sched.Task
	for _, id := range Experiments() {
		id := id
		tasks = append(tasks, sched.Task{ID: id, Run: func(tw io.Writer) error {
			if _, err := fmt.Fprintf(tw, "\n=== %s ===\n", id); err != nil {
				return err
			}
			return RunExperiment(tw, m, id)
		}})
	}
	return sched.Stream(w, workers, tasks)
}
