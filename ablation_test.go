// Ablation benchmarks for the design choices DESIGN.md calls out: the
// KTRIES best-of-k rule, the memory system's stride behaviour, POP's
// CSHIFT vectorization headroom, SFS write policies, the 8.0 ns
// production clock, and the multinode IXS projection.
package sx4bench_test

import (
	"math"
	"testing"

	"sx4bench"
	"sx4bench/internal/ccm2"
	"sx4bench/internal/core"
	"sx4bench/internal/kernels"
	"sx4bench/internal/pop"
	"sx4bench/internal/superux"
	"sx4bench/internal/sx4"
	"sx4bench/internal/sx4/iop"
	"sx4bench/internal/sx4/prog"
	"sx4bench/internal/sx4/xmu"
)

// roughness quantifies curve noise: mean |second difference| relative
// to the mean level of the series.
func roughness(ys []float64) float64 {
	if len(ys) < 3 {
		return 0
	}
	var sum, level float64
	for i := 1; i < len(ys)-1; i++ {
		sum += math.Abs(ys[i+1] - 2*ys[i] + ys[i-1])
	}
	for _, y := range ys {
		level += y
	}
	level /= float64(len(ys))
	return sum / float64(len(ys)-2) / level
}

// copyCurve measures the COPY sweep at a given KTRIES under jitter.
func copyCurve(m *sx4bench.Machine, ktries int, seed int64) []float64 {
	noise := core.NewNoise(0.15, seed)
	var ys []float64
	for _, k := range kernels.CopySweep(4) {
		meas := core.Run(m, k.Trace(), sx4.RunOpts{Procs: 1}, ktries, noise, k.PayloadBytes())
		ys = append(ys, meas.MBps())
	}
	return ys
}

// quietCopyCurve is the COPY sweep with jitter disabled: the intrinsic
// shape of the curve.
func quietCopyCurve(m *sx4bench.Machine) []float64 {
	var ys []float64
	for _, k := range kernels.CopySweep(4) {
		meas := core.Run(m, k.Trace(), sx4.RunOpts{Procs: 1}, 1, nil, k.PayloadBytes())
		ys = append(ys, meas.MBps())
	}
	return ys
}

func TestKTriesSmoothsCurves(t *testing.T) {
	// The paper: "performance curves produced are relatively smooth
	// when KTRIES is set to 5 or greater". The COPY curve has intrinsic
	// (noise-free) structure, so what KTRIES smooths is the roughness
	// in EXCESS of that floor — compare against the amp=0 curve.
	m := sx4bench.Benchmarked()
	r0 := roughness(quietCopyCurve(m))
	r1 := roughness(copyCurve(m, 1, 7)) - r0
	r5 := roughness(copyCurve(m, 5, 7)) - r0
	r20 := roughness(copyCurve(m, 20, 7)) - r0
	if !(r5 < r1 && r20 <= r5) {
		t.Errorf("KTRIES does not smooth: excess roughness k=1 %.4f, k=5 %.4f, k=20 %.4f", r1, r5, r20)
	}
	if r5 > 0.5*r1 {
		t.Errorf("KTRIES=5 excess roughness %.4f not well below single-shot %.4f", r5, r1)
	}
}

func BenchmarkAblationKTries(b *testing.B) {
	m := sx4bench.Benchmarked()
	var r5 float64
	for i := 0; i < b.N; i++ {
		r5 = roughness(copyCurve(m, 5, 7))
	}
	b.ReportMetric(r5, "roughness@k=5")
}

func BenchmarkAblationStrideSweep(b *testing.B) {
	// Bandwidth versus power-of-two stride: the bank-conflict cliff.
	m := sx4bench.Benchmarked()
	var worst float64
	for i := 0; i < b.N; i++ {
		for _, stride := range []int{1, 2, 4, 64, 256, 512, 1024} {
			p := prog.Simple("stride", 4,
				prog.Op{Class: prog.VLoad, VL: 1 << 18, Stride: stride},
				prog.Op{Class: prog.VStore, VL: 1 << 18, Stride: 1},
			)
			r := m.Run(p, sx4.RunOpts{Procs: 1})
			worst = r.PortMBps()
		}
	}
	b.ReportMetric(worst, "stride1024-MB/s")
}

func BenchmarkAblationCSHIFTVectorized(b *testing.B) {
	m := sx4bench.Benchmarked()
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = pop.VectorizedCSHIFTSpeedup(m)
	}
	b.ReportMetric(speedup, "speedup-if-vectorized")
}

func BenchmarkAblationProductionClock(b *testing.B) {
	bench := sx4bench.Benchmarked()
	prod := sx4bench.Production(32, 1)
	res, _ := ccm2.ResolutionByName("T170L18")
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = ccm2.SustainedGFLOPS(prod, res, 32)/ccm2.SustainedGFLOPS(bench, res, 32) - 1
	}
	b.ReportMetric(gain*100, "pct-gain(paper:~15)")
}

func BenchmarkAblationMultiNode(b *testing.B) {
	m := sx4bench.Benchmarked()
	res, _ := ccm2.ResolutionByName("T170L18")
	var gf float64
	for i := 0; i < b.N; i++ {
		gf = ccm2.MultiNodeProjection(m, res, 16).GFLOPS
	}
	b.ReportMetric(gf, "GFLOPS@512cpu")
}

func BenchmarkAblationSFSWritePolicy(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		wb := superux.NewSFS(xmu.New(4), iop.NewDisk(), 1<<20, 64, 4, true)
		wt := superux.NewSFS(xmu.New(4), iop.NewDisk(), 1<<20, 64, 4, false)
		tw := wb.Write(0, 32<<20)
		tt := wt.Write(0, 32<<20)
		ratio = tt / tw
	}
	b.ReportMetric(ratio, "writethrough/writeback")
}

func BenchmarkAblationEnsembleInterference(b *testing.B) {
	// Table 6's knob: how the interference model responds to node load.
	m := sx4bench.Benchmarked()
	res, _ := ccm2.ResolutionByName("T42L18")
	var degr float64
	for i := 0; i < b.N; i++ {
		alone := ccm2.StepSeconds(m, res, 4, 4)
		crowded := ccm2.StepSeconds(m, res, 4, 32)
		degr = (crowded/alone - 1) * 100
	}
	b.ReportMetric(degr, "pct(paper:1.89)")
}
