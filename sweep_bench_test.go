// The cold-sweep scaling benchmark: a memo-cold 10 000-scenario sweep
// across every registered machine, the workload the compiled-trace
// path and the sharded timing memo exist for. Sub-benchmarks sweep the
// worker count (1/4/8) and include the interpreted-engine ablation at
// 8 workers (SetCompiled(false) via target.CompiledSwitcher), so
// `make bench-sweep` pins both the scaling curve and what compilation
// buys in BENCH_SWEEP.json. Every variant cross-checks the sweep
// checksum: parallelism and compilation must not change a single bit.
package sx4bench_test

import (
	"testing"

	"sx4bench/internal/ncar"
)

func BenchmarkColdSweep10k(b *testing.B) {
	n := 10000
	if testing.Short() {
		n = 1000
	}
	scenarios := ncar.SweepScenarios(n)
	var want ncar.SweepResult
	variants := []struct {
		name     string
		workers  int
		compiled bool
	}{
		{"workers=1", 1, true},
		{"workers=4", 4, true},
		{"workers=8", 8, true},
		{"uncompiled/workers=8", 8, false},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := ncar.Sweep(scenarios, v.workers, v.compiled)
				if err != nil {
					b.Fatal(err)
				}
				if want.Scenarios == 0 {
					want = got
				} else if got != want {
					b.Fatalf("sweep summary diverged: %+v != %+v", got, want)
				}
			}
			b.ReportMetric(float64(n)/b.Elapsed().Seconds()*float64(b.N), "scenarios/s")
		})
	}
}
