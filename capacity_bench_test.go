// The fleet capacity scaling benchmark: a memo-cold 10 000-scenario
// Monte Carlo over the canonical fleet, the embarrassingly-parallel
// workload the capacity engine's ForEachGrain fan-out exists for.
// Sub-benchmarks sweep the worker count (1/4/8); each iteration builds
// a fresh Engine so every scenario simulates cold — a shared memo
// would let later variants replay earlier variants' work and fake the
// scaling curve. `make bench-capacity` pins the curve in
// BENCH_CAPACITY.json. Every variant cross-checks the report checksum:
// parallelism must not change a single bit.
package sx4bench_test

import (
	"fmt"
	"testing"

	"sx4bench/internal/fleet"
	"sx4bench/internal/ncar"

	_ "sx4bench/internal/machine" // register the fleet's machine models
)

func BenchmarkCapacityMonteCarlo(b *testing.B) {
	n := 10000
	if testing.Short() {
		n = 1000
	}
	nodes, err := fleet.ParseSpec(ncar.CanonicalFleetSpec)
	if err != nil {
		b.Fatal(err)
	}
	cfg := fleet.Config{
		Nodes:     nodes,
		Mixes:     fleet.CanonicalMixes(),
		Scenarios: n,
		Seed:      fleet.DefaultSeed,
	}
	var want uint64
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var eng fleet.Engine
				rep, err := eng.MonteCarlo(cfg, workers)
				if err != nil {
					b.Fatal(err)
				}
				if want == 0 {
					want = rep.Checksum
				} else if rep.Checksum != want {
					b.Fatalf("report checksum diverged: %016x != %016x", rep.Checksum, want)
				}
			}
			b.ReportMetric(float64(n)/b.Elapsed().Seconds()*float64(b.N), "scenarios/s")
		})
	}
}
