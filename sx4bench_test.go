package sx4bench_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"sx4bench"
	"sx4bench/internal/ccm2"
)

// Example regenerates the paper's Table 4 (CCM2 resolutions), the one
// experiment whose values are exact by construction.
func Example() {
	m := sx4bench.Benchmarked()
	if err := sx4bench.RunExperiment(os.Stdout, m, "table4"); err != nil {
		panic(err)
	}
	// Output:
	// table4: Typical CCM2 resolutions, grid spacings, and time steps
	// Model Resolution  Horizontal Grid Size  Nominal Grid Spacing  Time Step
	// ----------------  --------------------  --------------------  ---------
	// T42L18            64 x 128              2.8 degrees           20.0 min.
	// T63L18            96 x 192              2.1 degrees           12.0 min.
	// T85L18            128 x 256             1.4 degrees           10.0 min.
	// T106L18           160 x 320             1.1 degrees           7.5 min.
	// T170L18           256 x 512             0.7 degrees           5.0 min.
}

func TestFacadeMachines(t *testing.T) {
	b := sx4bench.Benchmarked()
	if b.Config().ClockNS != 9.2 || b.Config().CPUs != 32 {
		t.Errorf("Benchmarked config: %+v", b.Config())
	}
	p := sx4bench.Production(16, 2)
	if p.Config().ClockNS != 8.0 || p.Config().TotalCPUs() != 32 {
		t.Errorf("Production config: %+v", p.Config())
	}
}

func TestRunExperimentAllIDs(t *testing.T) {
	m := sx4bench.Benchmarked()
	for _, id := range sx4bench.Experiments() {
		var buf bytes.Buffer
		if err := sx4bench.RunExperiment(&buf, m, id); err != nil {
			t.Errorf("experiment %s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("experiment %s produced no output", id)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := sx4bench.RunExperiment(&buf, sx4bench.Benchmarked(), "fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunAllOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := sx4bench.RunAll(&buf, sx4bench.Benchmarked()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"table7", "fig8", "PRODLOAD", "PARANOIA", "865.9"} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

// TestRunAllParallelMatchesSerial is the engine's golden test: for any
// worker count the full experiment stream must be byte-identical to
// the serial run — same experiments, same order, same text.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	var serial bytes.Buffer
	if err := sx4bench.RunAllWorkers(&serial, sx4bench.Benchmarked(), 1); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		var parallel bytes.Buffer
		if err := sx4bench.RunAllWorkers(&parallel, sx4bench.Benchmarked(), workers); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
			a, b := serial.String(), parallel.String()
			i := 0
			for i < len(a) && i < len(b) && a[i] == b[i] {
				i++
			}
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			t.Fatalf("workers=%d output differs from serial at byte %d: %q vs %q",
				workers, i, a[lo:minLen(i+40, len(a))], b[lo:minLen(i+40, len(b))])
		}
	}
}

func minLen(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestProductionClockClaim(t *testing.T) {
	// The paper: "We anticipate that an additional 15% performance
	// improvement can be realized with some code tuning and running on
	// a system with an 8.0 ns clock." The clock alone gives 9.2/8.0 =
	// 15% on compute-bound work.
	bench := sx4bench.Benchmarked()
	prod := sx4bench.Production(32, 1)
	res, _ := ccm2.ResolutionByName("T170L18")
	gfBench := ccm2.SustainedGFLOPS(bench, res, 32)
	gfProd := ccm2.SustainedGFLOPS(prod, res, 32)
	gain := gfProd/gfBench - 1
	if gain < 0.12 || gain > 0.18 {
		t.Errorf("8.0 ns clock gain = %.1f%%, paper anticipates ~15%%", gain*100)
	}
}
